package vm

import (
	"fmt"

	"aqe/internal/ir"
	"aqe/internal/ir/analysis"
)

// Translate lowers an IR function into bytecode following Fig. 9 of the
// paper: compute liveness and block order, allocate registers on demand,
// translate instruction by instruction skipping subsumed instructions
// (macro-op fusion, §IV-F), propagate φ values with register moves at block
// ends, and release registers when ranges end (handled inside allocate).
//
// Translate may split critical edges of f (an idempotent, semantics-
// preserving transformation shared with the closure compiler).
func Translate(f *ir.Function, opts Options) (*Program, error) {
	f.SplitCriticalEdges()
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("vm: translate %s: %w", f.Name, err)
	}
	lv := analysis.ComputeLiveness(f)
	fu := planFusion(f, opts)
	al := allocate(f, lv, fu.hasSlot, opts)

	t := &translator{
		f: f, lv: lv, fu: fu, al: al,
		prog: &Program{
			Name:      f.Name,
			ConstPool: al.constPool,
			ParamBase: al.paramBase,
			NumParams: len(f.Params),
		},
		blockPC: make([]int, len(f.Blocks)),
	}
	t.emitAll()
	t.prog.NumRegs = al.numSlots
	t.prog.SourceInstrs = f.NumInstrs()
	return t.prog, nil
}

// fusion records which IR instructions are subsumed into macro-ops.
type fusion struct {
	// hasSlot[v] is false for values that never materialize in a register
	// (fused geps and compares, pair values of fused overflow checks, the
	// overflow flags).
	hasSlot []bool
	// emit[v] is false for instructions replaced by a macro-op elsewhere.
	emit []bool
	// fusedCmpBr[block] is the compare feeding the block's fused
	// compare-and-branch terminator, if any.
	fusedCmpBr map[*ir.Block]*ir.Value
	// fusedOvf[block] describes an overflow-check group fused into the
	// block's terminator.
	fusedOvf map[*ir.Block]*ovfGroup
	count    int
}

type ovfGroup struct {
	op     *ir.Value // the sadd/ssub/smul.ovf instruction
	result *ir.Value // extractvalue 0
	flag   *ir.Value // extractvalue 1
}

// planFusion scans the function for the macro-op patterns of §IV-F:
//
//   - GetElementPtr whose uses are all load/store addresses in the same
//     block folds into load_idx/store_idx opcodes;
//   - an i64 comparison whose only use is its own block's conditional
//     branch folds into a compare-and-branch opcode;
//   - the four-instruction overflow-check sequence (ovf-op, extractvalue 0,
//     extractvalue 1, condbr) at the tail of a block folds into a single
//     checked-arithmetic-and-branch opcode.
func planFusion(f *ir.Function, opts Options) *fusion {
	fu := &fusion{
		hasSlot:    make([]bool, f.NumValues()),
		emit:       make([]bool, f.NumValues()),
		fusedCmpBr: make(map[*ir.Block]*ir.Value),
		fusedOvf:   make(map[*ir.Block]*ovfGroup),
	}
	for i := range fu.hasSlot {
		fu.hasSlot[i] = true
		fu.emit[i] = true
	}
	if opts.NoFusion {
		return fu
	}

	// Use accounting in one linear sweep. pairUses collects the users of
	// Pair-typed values so the overflow-pattern check below stays O(1) per
	// candidate — the translation must remain linear even for the 160k-
	// instruction machine-generated functions of §V-E.
	useCount := make([]int, f.NumValues())
	memAddrOnly := make([]bool, f.NumValues())
	sameBlockUses := make([]bool, f.NumValues())
	defBlock := make([]*ir.Block, f.NumValues())
	pairUses := make(map[*ir.Value][]*ir.Value)
	for i := range memAddrOnly {
		memAddrOnly[i] = true
		sameBlockUses[i] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Type != ir.Void {
				defBlock[in.ID] = b
			}
		}
	}
	visit := func(u *ir.Value, b *ir.Block) {
		for ai, a := range u.Args {
			if !a.IsInstr() {
				continue
			}
			useCount[a.ID]++
			isMemAddr := (u.Op == ir.OpLoad && ai == 0) || (u.Op == ir.OpStore && ai == 0)
			if !isMemAddr {
				memAddrOnly[a.ID] = false
			}
			if defBlock[a.ID] != b {
				sameBlockUses[a.ID] = false
			}
			if a.Type == ir.Pair {
				pairUses[a] = append(pairUses[a], u)
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in, b)
		}
		visit(b.Term, b)
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGEP && useCount[in.ID] > 0 &&
				memAddrOnly[in.ID] && sameBlockUses[in.ID] {
				fu.hasSlot[in.ID] = false
				fu.emit[in.ID] = false
				fu.count++
			}
		}
		term := b.Term
		if term.Op != ir.OpCondBr {
			continue
		}
		cond := term.Args[0]
		if !cond.IsInstr() || cond.Block != b || useCount[cond.ID] != 1 {
			continue
		}
		switch cond.Op {
		case ir.OpICmp:
			fu.hasSlot[cond.ID] = false
			fu.emit[cond.ID] = false
			fu.fusedCmpBr[b] = cond
			fu.count++
		case ir.OpExtractValue:
			if cond.Lit != 1 {
				continue
			}
			pair := cond.Args[0]
			if pair.Block != b || pair.Type != ir.Pair {
				continue
			}
			switch pair.Op {
			case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
			default:
				continue
			}
			// The pair must be consumed only by its two extracts, and we
			// need the value extract to exist (it receives the register).
			var result *ir.Value
			ok := useCount[pair.ID] <= 2
			for _, u := range pairUses[pair] {
				if u == cond {
					continue
				}
				if u.Op == ir.OpExtractValue && u.Lit == 0 && u.Block == b {
					result = u
				} else {
					ok = false
				}
			}
			if !ok || result == nil {
				continue
			}
			// Nothing may sit between the group and the terminator that
			// reads the result before the fused op produces it; we require
			// the group members to be the trailing instructions of the
			// block.
			tail := map[*ir.Value]bool{pair: true, result: true, cond: true}
			pos := len(b.Instrs) - 1
			trailing := 0
			for pos >= 0 && tail[b.Instrs[pos]] {
				trailing++
				pos--
			}
			if trailing != 3 {
				continue
			}
			fu.hasSlot[pair.ID] = false
			fu.hasSlot[cond.ID] = false
			fu.emit[pair.ID] = false
			fu.emit[result.ID] = false
			fu.emit[cond.ID] = false
			fu.fusedOvf[b] = &ovfGroup{op: pair, result: result, flag: cond}
			fu.count += 3
		}
	}
	return fu
}

type translator struct {
	f    *ir.Function
	lv   *analysis.Liveness
	fu   *fusion
	al   *allocation
	prog *Program

	blockPC []int // by block ID; -1 until laid out
	patches []patch
}

// patch records a branch operand to rewrite from block ID to pc.
type patch struct {
	inst  int
	field uint8 // 0=A, 1=B, 2=C, 3=Lit-high, 4=Lit-low
	block int
}

func (t *translator) emit(in Inst) int {
	t.prog.Code = append(t.prog.Code, in)
	return len(t.prog.Code) - 1
}

func (t *translator) slot(v *ir.Value) int32 { return t.al.of(v) }

func (t *translator) emitAll() {
	rpo := t.lv.Order()
	for i := range t.blockPC {
		t.blockPC[i] = -1
	}
	for bi, b := range rpo {
		t.blockPC[b.ID] = len(t.prog.Code)
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi || !t.fu.emit[in.ID] {
				continue
			}
			t.emitInstr(in)
		}
		var next *ir.Block
		if bi+1 < len(rpo) {
			next = rpo[bi+1]
		}
		t.emitTerm(b, next)
	}
	t.prog.Fused = t.fu.count
	// Resolve branch targets.
	for _, p := range t.patches {
		pc := t.blockPC[p.block]
		in := &t.prog.Code[p.inst]
		switch p.field {
		case 0:
			in.A = int32(pc)
		case 1:
			in.B = int32(pc)
		case 2:
			in.C = int32(pc)
		case 3:
			in.Lit = in.Lit&0x00000000ffffffff | uint64(uint32(pc))<<32
		case 4:
			in.Lit = in.Lit&0xffffffff00000000 | uint64(uint32(pc))
		}
	}
}

// addrOperand returns (baseReg, idxReg, lit) for a memory operand, folding
// a fused GEP into the load_idx/store_idx encoding; a plain address uses
// base with a zero index.
func (t *translator) addrOperand(addr *ir.Value) (int32, int32, uint64, bool) {
	if addr.IsInstr() && addr.Op == ir.OpGEP && !t.fu.emit[addr.ID] {
		return t.slot(addr.Args[0]), t.slot(addr.Args[1]),
			packScaleDisp(int64(addr.Lit), int64(addr.Lit2)), true
	}
	return t.slot(addr), 0, 0, false
}

var icmpOp = map[ir.Pred]Op{
	ir.Eq: OpCmpEqI64, ir.Ne: OpCmpNeI64,
	ir.SLt: OpCmpSLtI64, ir.SLe: OpCmpSLeI64, ir.SGt: OpCmpSGtI64, ir.SGe: OpCmpSGeI64,
	ir.ULt: OpCmpULtI64, ir.ULe: OpCmpULeI64, ir.UGt: OpCmpUGtI64, ir.UGe: OpCmpUGeI64,
}

var fcmpOp = map[ir.Pred]Op{
	ir.Eq: OpCmpEqF64, ir.Ne: OpCmpNeF64,
	ir.SLt: OpCmpLtF64, ir.SLe: OpCmpLeF64, ir.SGt: OpCmpGtF64, ir.SGe: OpCmpGeF64,
}

var jcmpOp = map[ir.Pred]Op{
	ir.Eq: OpJEqI64, ir.Ne: OpJNeI64,
	ir.SLt: OpJSLtI64, ir.SLe: OpJSLeI64, ir.SGt: OpJSGtI64, ir.SGe: OpJSGeI64,
	ir.ULt: OpJULtI64, ir.ULe: OpJULeI64, ir.UGt: OpJUGtI64, ir.UGe: OpJUGeI64,
}

var binOp = map[ir.Op]Op{
	ir.OpAdd: OpAddI64, ir.OpSub: OpSubI64, ir.OpMul: OpMulI64,
	ir.OpSDiv: OpSDivI64, ir.OpSRem: OpSRemI64, ir.OpUDiv: OpUDivI64, ir.OpURem: OpURemI64,
	ir.OpFAdd: OpAddF64, ir.OpFSub: OpSubF64, ir.OpFMul: OpMulF64, ir.OpFDiv: OpDivF64,
	ir.OpAnd: OpAnd64, ir.OpOr: OpOr64, ir.OpXor: OpXor64,
	ir.OpShl: OpShl64, ir.OpLShr: OpLShr64, ir.OpAShr: OpAShr64,
}

var ovfOp = map[ir.Op]Op{
	ir.OpSAddOvf: OpSAddOvf, ir.OpSSubOvf: OpSSubOvf, ir.OpSMulOvf: OpSMulOvf,
}

var ovfBrOp = map[ir.Op]Op{
	ir.OpSAddOvf: OpSAddOvfBr, ir.OpSSubOvf: OpSSubOvfBr, ir.OpSMulOvf: OpSMulOvfBr,
}

var loadOp = [9]Op{1: OpLoadI8, 2: OpLoadI16, 4: OpLoadI32, 8: OpLoadI64}
var loadIdxOp = [9]Op{1: OpLoadIdxI8, 2: OpLoadIdxI16, 4: OpLoadIdxI32, 8: OpLoadIdxI64}
var storeOp = [9]Op{1: OpStoreI8, 2: OpStoreI16, 4: OpStoreI32, 8: OpStoreI64}
var storeIdxOp = [9]Op{1: OpStoreIdxI8, 2: OpStoreIdxI16, 4: OpStoreIdxI32, 8: OpStoreIdxI64}

func (t *translator) emitInstr(in *ir.Value) {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem, ir.OpUDiv, ir.OpURem,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		t.emit(Inst{Op: binOp[in.Op], A: t.slot(in), B: t.slot(in.Args[0]), C: t.slot(in.Args[1])})
	case ir.OpICmp:
		t.emit(Inst{Op: icmpOp[in.Pred], A: t.slot(in), B: t.slot(in.Args[0]), C: t.slot(in.Args[1])})
	case ir.OpFCmp:
		t.emit(Inst{Op: fcmpOp[in.Pred], A: t.slot(in), B: t.slot(in.Args[0]), C: t.slot(in.Args[1])})
	case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
		t.emit(Inst{Op: ovfOp[in.Op], A: t.slot(in), B: t.slot(in.Args[0]), C: t.slot(in.Args[1])})
	case ir.OpExtractValue:
		// Unfused extract: pair occupies slots [s, s+1].
		src := t.slot(in.Args[0]) + int32(in.Lit)
		t.emit(Inst{Op: OpMov, A: t.slot(in), B: src})
	case ir.OpSExt:
		var op Op
		switch in.Args[0].Type {
		case ir.I8, ir.I1:
			op = OpSExt8
		case ir.I16:
			op = OpSExt16
		case ir.I32:
			op = OpSExt32
		default:
			op = OpMov
		}
		t.emit(Inst{Op: op, A: t.slot(in), B: t.slot(in.Args[0])})
	case ir.OpZExt:
		// Registers hold zero-extended narrow values already.
		t.emit(Inst{Op: OpMov, A: t.slot(in), B: t.slot(in.Args[0])})
	case ir.OpTrunc:
		var op Op
		switch in.Type {
		case ir.I8, ir.I1:
			op = OpTrunc8
		case ir.I16:
			op = OpTrunc16
		case ir.I32:
			op = OpTrunc32
		default:
			op = OpMov
		}
		t.emit(Inst{Op: op, A: t.slot(in), B: t.slot(in.Args[0])})
	case ir.OpSIToFP:
		t.emit(Inst{Op: OpSIToFP, A: t.slot(in), B: t.slot(in.Args[0])})
	case ir.OpFPToSI:
		t.emit(Inst{Op: OpFPToSI, A: t.slot(in), B: t.slot(in.Args[0])})
	case ir.OpLoad:
		w := in.Type.Width()
		if base, idx, lit, fused := t.addrOperand(in.Args[0]); fused {
			t.emit(Inst{Op: loadIdxOp[w], A: t.slot(in), B: base, C: idx, Lit: lit})
		} else {
			t.emit(Inst{Op: loadOp[w], A: t.slot(in), B: base})
		}
	case ir.OpStore:
		w := in.Args[1].Type.Width()
		val := t.slot(in.Args[1])
		if base, idx, lit, fused := t.addrOperand(in.Args[0]); fused {
			t.emit(Inst{Op: storeIdxOp[w], A: val, B: base, C: idx, Lit: lit})
		} else {
			t.emit(Inst{Op: storeOp[w], A: val, B: base})
		}
	case ir.OpGEP:
		t.emit(Inst{Op: OpLea, A: t.slot(in), B: t.slot(in.Args[0]), C: t.slot(in.Args[1]),
			Lit: packScaleDisp(int64(in.Lit), int64(in.Lit2))})
	case ir.OpSelect:
		t.emit(Inst{Op: OpSelect, A: t.slot(in), B: t.slot(in.Args[0]),
			C: t.slot(in.Args[1]), Lit: uint64(t.slot(in.Args[2]))})
	case ir.OpCall:
		for i, a := range in.Args {
			t.emit(Inst{Op: OpArg, A: int32(i), B: t.slot(a)})
		}
		dst := int32(-1)
		if in.Type != ir.Void {
			dst = t.slot(in)
		}
		t.emit(Inst{Op: OpCall, A: dst, B: int32(len(in.Args)), Lit: uint64(in.Callee)})
	default:
		panic(fmt.Sprintf("vm: cannot translate %s", in.Op))
	}
}

// emitTerm emits the φ-propagation moves for the block's successors
// followed by the (possibly fused) terminator.
func (t *translator) emitTerm(b *ir.Block, next *ir.Block) {
	t.emitPhiMoves(b)
	term := b.Term
	switch term.Op {
	case ir.OpBr:
		if term.Targets[0] != next {
			i := t.emit(Inst{Op: OpJmp})
			t.patches = append(t.patches, patch{i, 0, term.Targets[0].ID})
		}
	case ir.OpCondBr:
		if g, ok := t.fu.fusedOvf[b]; ok {
			i := t.emit(Inst{Op: ovfBrOp[g.op.Op], A: t.slot(g.result),
				B: t.slot(g.op.Args[0]), C: t.slot(g.op.Args[1])})
			t.patches = append(t.patches,
				patch{i, 3, term.Targets[0].ID}, // taken on overflow
				patch{i, 4, term.Targets[1].ID})
			return
		}
		if cmp, ok := t.fu.fusedCmpBr[b]; ok {
			i := t.emit(Inst{Op: jcmpOp[cmp.Pred],
				A: t.slot(cmp.Args[0]), B: t.slot(cmp.Args[1])})
			t.patches = append(t.patches,
				patch{i, 2, term.Targets[0].ID},
				patch{i, 4, term.Targets[1].ID})
			return
		}
		i := t.emit(Inst{Op: OpJmpIf, A: t.slot(term.Args[0])})
		t.patches = append(t.patches,
			patch{i, 1, term.Targets[0].ID},
			patch{i, 2, term.Targets[1].ID})
	case ir.OpRet:
		t.emit(Inst{Op: OpRet, A: t.slot(term.Args[0])})
	case ir.OpRetVoid:
		t.emit(Inst{Op: OpRetVoid})
	}
}

// emitPhiMoves lowers the φ-nodes of b's successors into register moves at
// the end of b, sequentializing the parallel copy with the scratch register
// when the moves form a cycle (the classic swap problem).
func (t *translator) emitPhiMoves(b *ir.Block) {
	type move struct{ dst, src int32 }
	var moves []move
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			for i, in := range phi.Incoming {
				if in == b {
					d, src := t.slot(phi), t.slot(phi.Args[i])
					if d != src {
						moves = append(moves, move{d, src})
					}
				}
			}
		}
	}
	for len(moves) > 0 {
		progress := false
		for i := 0; i < len(moves); i++ {
			m := moves[i]
			blocked := false
			for j, o := range moves {
				if j != i && o.src == m.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			t.emit(Inst{Op: OpMov, A: m.dst, B: m.src})
			moves = append(moves[:i], moves[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			// Cycle: save one destination to scratch and redirect its
			// readers there.
			d := moves[0].dst
			t.emit(Inst{Op: OpMov, A: t.al.scratch, B: d})
			for i := range moves {
				if moves[i].src == d {
					moves[i].src = t.al.scratch
				}
			}
		}
	}
}
