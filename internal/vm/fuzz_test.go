// The external test package breaks the vm → interp → vm import cycle.
package vm_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"aqe/internal/asm"
	"aqe/internal/ir"
	"aqe/internal/ir/interp"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// byteSrc deterministically drives the IR builder from fuzz input.
type byteSrc struct {
	data []byte
	i    int
}

func (s *byteSrc) next() byte {
	if s.i >= len(s.data) {
		return 0
	}
	b := s.data[s.i]
	s.i++
	return b
}

func (s *byteSrc) u64() uint64 {
	var b [8]byte
	for i := range b {
		b[i] = s.next()
	}
	return binary.LittleEndian.Uint64(b[:])
}

// buildFuzzFunc decodes the input into a well-formed, trap-free function:
// a counted loop threading an accumulator through φ-nodes, whose body is a
// byte-selected mix of arithmetic, comparisons, selects, float round-trips
// and scratch-segment loads/stores, closed by an overflow-checked add that
// branches to a sentinel return (the fusable pattern).
func buildFuzzFunc(src *byteSrc) *ir.Function {
	m := ir.NewModule("fuzz")
	f := m.NewFunc("f", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	iters := b.ConstI64(int64(2 + src.next()%7))
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.I64)
	acc := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, iters)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	pool := []*ir.Value{f.Params[0], f.Params[1], i, acc,
		b.ConstI64(int64(src.u64())), b.ConstI64(int64(src.next()) - 128)}
	pick := func() *ir.Value { return pool[int(src.next())%len(pool)] }
	push := func(v *ir.Value) { pool = append(pool, v) }
	base := f.Params[2]
	addr := func() *ir.Value {
		slot := b.And(pick(), b.ConstI64(31))
		return b.GEP(base, slot, 8, 0)
	}
	nops := 4 + int(src.next())%56
	for k := 0; k < nops; k++ {
		switch src.next() % 16 {
		case 0:
			push(b.Add(pick(), pick()))
		case 1:
			push(b.Sub(pick(), pick()))
		case 2:
			push(b.Mul(pick(), pick()))
		case 3:
			push(b.Xor(pick(), pick()))
		case 4:
			push(b.And(pick(), pick()))
		case 5:
			push(b.Or(pick(), pick()))
		case 6:
			sh := b.And(pick(), b.ConstI64(63))
			push(b.LShr(pick(), sh))
		case 7:
			sh := b.And(pick(), b.ConstI64(63))
			push(b.Shl(pick(), sh))
		case 8:
			c := b.ICmp(ir.Pred(src.next()%10), pick(), pick())
			push(b.Select(c, pick(), pick()))
		case 9:
			c := b.ICmp(ir.Pred(src.next()%6), pick(), pick())
			push(b.ZExt(c, ir.I64))
		case 10:
			d := b.Or(pick(), one) // nonzero divisor
			push(b.UDiv(pick(), d))
		case 11:
			d := b.Or(b.And(pick(), b.ConstI64(255)), one) // small positive
			push(b.SRem(pick(), d))
		case 12:
			b.Store(addr(), pick())
		case 13:
			push(b.Load(ir.I64, addr()))
		case 14:
			x := b.SIToFP(b.And(pick(), b.ConstI64(0xFFFFF)))
			y := b.SIToFP(b.Or(b.And(pick(), b.ConstI64(0xFF)), one))
			push(b.FPToSI(b.FDiv(b.FAdd(x, y), y)))
		case 15:
			push(b.AShr(pick(), b.And(pick(), b.ConstI64(63))))
		}
	}
	acc2 := acc
	for _, v := range pool[len(pool)-3:] {
		acc2 = b.Xor(acc2, v)
	}
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(acc, f.Params[0], entry)
	ir.AddIncoming(acc, acc2, body)

	b.SetBlock(exit)
	ovfB := f.NewBlock()
	contB := f.NewBlock()
	pair := b.SAddOvf(acc, f.Params[1])
	v := b.ExtractValue(pair, 0)
	fl := b.ExtractValue(pair, 1)
	b.CondBr(fl, ovfB, contB)
	b.SetBlock(ovfB)
	b.Ret(b.ConstI64(0x0DEAD))
	b.SetBlock(contB)
	b.Ret(v)
	return f
}

// FuzzTranslate differentially fuzzes the bytecode translator: any input
// becomes a verified IR function, which every register-allocation strategy
// must translate without error and execute with results and memory
// effects identical to the direct SSA interpreter. Where a native backend
// exists, the same function is also assembled to machine code (the tier-6
// template JIT) and diffed against the same oracle.
func FuzzTranslate(f *testing.F) {
	f.Add([]byte("aqe"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add(bytes.Repeat([]byte{12, 13, 7}, 40)) // store/load/shift heavy
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x80, 0x7f}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &byteSrc{data: data}
		fn := buildFuzzFunc(src)
		if err := fn.Verify(); err != nil {
			t.Fatalf("builder produced invalid IR: %v", err)
		}
		args := [2]uint64{src.u64(), src.u64()}
		runOne := func(g *ir.Function, opts *vm.Options) (uint64, []byte) {
			mem := rt.NewMemory()
			scratch := make([]byte, 32*8)
			base := mem.AddSegment(scratch)
			ctx := &rt.Ctx{Mem: mem}
			if opts == nil {
				return interp.Run(g, ctx, []uint64{args[0], args[1], base}), scratch
			}
			p, err := vm.Translate(g, *opts)
			if err != nil {
				t.Fatalf("translate %+v: %v", *opts, err)
			}
			return p.Run(ctx, []uint64{args[0], args[1], base}), scratch
		}
		wantRes, wantMem := runOne(fn, nil)
		strategies := []vm.Options{
			{Strategy: vm.LoopAware},
			{Strategy: vm.NoReuse},
			{Strategy: vm.Window, WindowSize: 2},
			{Strategy: vm.LoopAware, NoFusion: true},
		}
		for _, opts := range strategies {
			o := opts
			res, mem := runOne(fn.Clone(), &o)
			if res != wantRes {
				t.Errorf("%+v: result %#x, want %#x", o, res, wantRes)
			}
			if !bytes.Equal(mem, wantMem) {
				t.Errorf("%+v: memory image diverges", o)
			}
		}
		if asm.Supported() {
			// Both native backends: the register-allocating default and the
			// slot-per-op baseline must agree with the oracle bit for bit.
			for _, nv := range []struct {
				name string
				opts asm.Options
			}{{"regalloc", asm.Options{}}, {"slots", asm.Options{NoRegAlloc: true}}} {
				// Clone: asm.CompileOpts splits critical edges in place.
				code, err := asm.CompileOpts(fn.Clone(), nv.opts)
				if err != nil {
					t.Fatalf("native compile (%s): %v", nv.name, err)
				}
				mem := rt.NewMemory()
				scratch := make([]byte, 32*8)
				base := mem.AddSegment(scratch)
				ctx := &rt.Ctx{Mem: mem}
				res := code.Run(ctx, []uint64{args[0], args[1], base})
				if res != wantRes {
					t.Errorf("native (%s): result %#x, want %#x", nv.name, res, wantRes)
				}
				if !bytes.Equal(scratch, wantMem) {
					t.Errorf("native (%s): memory image diverges", nv.name)
				}
			}
		}
	})
}
