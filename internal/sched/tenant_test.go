package sched

import (
	"context"
	"testing"
	"time"
)

// admitAsync starts an AdmitTenant on its own goroutine and returns a
// channel that yields its error once admission resolves.
func admitAsync(s *Scheduler, ctx context.Context, tenant string) chan error {
	done := make(chan error, 1)
	go func() {
		_, _, err := s.AdmitTenant(ctx, tenant)
		done <- err
	}()
	return done
}

func mustAdmit(t *testing.T, s *Scheduler, tenant string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, err := s.AdmitTenant(ctx, tenant); err != nil {
		t.Fatalf("admit %q: %v", tenant, err)
	}
}

func settled(done chan error) bool {
	select {
	case <-done:
		return true
	case <-time.After(50 * time.Millisecond):
		return false
	}
}

func TestPerTenantQuota(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 4, MaxPerTenant: 1})
	mustAdmit(t, s, "a")
	// Tenant a is at its quota: a second admission queues despite three
	// free global slots; tenant b sails through.
	blocked := admitAsync(s, context.Background(), "a")
	if settled(blocked) {
		t.Fatal("tenant over quota was admitted")
	}
	mustAdmit(t, s, "b")
	st := s.AdmissionStats()
	if st.Running != 2 || st.Waiting != 1 {
		t.Fatalf("running=%d waiting=%d, want 2/1", st.Running, st.Waiting)
	}
	if ts := st.Tenants["a"]; ts.Running != 1 || ts.Waiting != 1 {
		t.Fatalf("tenant a running=%d waiting=%d, want 1/1", ts.Running, ts.Waiting)
	}
	// Releasing a's ticket admits a's waiter.
	s.ReleaseTenant("a")
	if err := <-blocked; err != nil {
		t.Fatalf("queued admission failed: %v", err)
	}
	s.ReleaseTenant("a")
	s.ReleaseTenant("b")
	if st := s.AdmissionStats(); st.Running != 0 {
		t.Fatalf("running=%d after releases, want 0", st.Running)
	}
}

func TestQuotaWaiterDoesNotBlockOtherTenants(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 2, MaxPerTenant: 1})
	mustAdmit(t, s, "a")
	mustAdmit(t, s, "b")
	// a2 queues first (quota + capacity), c queues behind it (capacity).
	a2 := admitAsync(s, context.Background(), "a")
	time.Sleep(10 * time.Millisecond) // order the two waiters
	c := admitAsync(s, context.Background(), "c")
	if settled(a2) || settled(c) {
		t.Fatal("admission over capacity")
	}
	// b's release frees one slot. a2 is older but a is still at its
	// quota, so the slot must skip to c instead of convoying behind a.
	s.ReleaseTenant("b")
	if err := <-c; err != nil {
		t.Fatalf("tenant c admission failed: %v", err)
	}
	if settled(a2) {
		t.Fatal("tenant a admitted while over quota")
	}
	// a's own release finally admits a2.
	s.ReleaseTenant("a")
	if err := <-a2; err != nil {
		t.Fatalf("tenant a admission failed: %v", err)
	}
	s.ReleaseTenant("a")
	s.ReleaseTenant("c")
}

func TestAdmitTenantCancelWhileQueued(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 1})
	mustAdmit(t, s, "a")
	ctx, cancel := context.WithCancel(context.Background())
	blocked := admitAsync(s, ctx, "b")
	cancel()
	if err := <-blocked; err == nil {
		t.Fatal("cancelled admission returned nil error")
	}
	// The cancelled waiter must have left the queue: the next release
	// returns the slot instead of granting a dead waiter.
	s.ReleaseTenant("a")
	if st := s.AdmissionStats(); st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("running=%d waiting=%d after cancel+release, want 0/0", st.Running, st.Waiting)
	}
	mustAdmit(t, s, "c")
	s.ReleaseTenant("c")
}

// slotRunner leases slots without doing work, so pickLocked's fair-share
// choice can be observed deterministically.
type slotRunner struct{ n int }

func (r *slotRunner) Slots() int       { return r.n }
func (r *slotRunner) RunSlot(int) bool { return true }

func TestPickLockedWeightedFairShare(t *testing.T) {
	s := New(Options{PoolWorkers: 8, MaxQueries: 8,
		Weights: map[string]int{"heavy": 3, "light": 1}})
	mk := func(tenant string) *job {
		j := &job{r: &slotRunner{n: 8}, tenant: tenant, weight: s.weightOf(tenant),
			done: make(chan struct{})}
		for i := 7; i >= 0; i-- {
			j.free = append(j.free, i)
		}
		return j
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = []*job{mk("heavy"), mk("light")}
	// Lease 8 workers: fair share by weight 3:1 gives heavy 6, light 2.
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		j, _ := s.pickLocked()
		if j == nil {
			t.Fatal("no job picked")
		}
		counts[j.tenant]++
	}
	if counts["heavy"] != 6 || counts["light"] != 2 {
		t.Fatalf("leases heavy=%d light=%d, want 6/2", counts["heavy"], counts["light"])
	}
}

func TestPickLockedUntenantedRoundRobin(t *testing.T) {
	// All-default tenants degenerate to the original round-robin: equal
	// shares, rotating start.
	s := New(Options{PoolWorkers: 4, MaxQueries: 4})
	mk := func() *job {
		j := &job{r: &slotRunner{n: 4}, weight: 1, done: make(chan struct{})}
		for i := 3; i >= 0; i-- {
			j.free = append(j.free, i)
		}
		return j
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, b := mk(), mk()
	s.jobs = []*job{a, b}
	j1, _ := s.pickLocked()
	j2, _ := s.pickLocked()
	if j1 == j2 {
		t.Fatal("round-robin did not alternate between equal jobs")
	}
}

func TestRunTenantCompletes(t *testing.T) {
	// End-to-end: two tenants' runners drain over the shared pool and
	// every leased worker is returned to its tenant's count.
	s := New(Options{PoolWorkers: 2, MaxQueries: 2,
		Weights: map[string]int{"a": 2}})
	jobs := map[string]*countJob{"a": newCountJob(64, 2), "b": newCountJob(64, 2)}
	done := make(chan string, 2)
	for tenant, j := range jobs {
		go func(tenant string, j *countJob) {
			s.RunTenant(j, tenant)
			done <- tenant
		}(tenant, j)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("RunTenant did not complete")
		}
	}
	for tenant, j := range jobs {
		if j.ran.Load() != 64 {
			t.Fatalf("tenant %q ran %d/64 units", tenant, j.ran.Load())
		}
		if j.overlap.Load() {
			t.Fatalf("tenant %q had overlapping slot leases", tenant)
		}
	}
	s.mu.Lock()
	for tenant, n := range s.tActive {
		if n != 0 {
			t.Fatalf("tenant %q still has %d leased workers", tenant, n)
		}
	}
	s.mu.Unlock()
}
