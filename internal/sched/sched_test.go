package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionCap asserts the concurrency cap is never exceeded: N
// goroutines admit, bump a concurrency gauge, and release; the observed
// maximum must stay at the cap while everyone is eventually admitted.
func TestAdmissionCap(t *testing.T) {
	s := New(Options{PoolWorkers: 2, MaxQueries: 3})
	var cur, peak, total atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Admit(context.Background()); err != nil {
				t.Error(err)
				return
			}
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			total.Add(1)
			s.Release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("observed %d concurrent tickets, cap is 3", got)
	}
	if total.Load() != 24 {
		t.Errorf("admitted %d of 24", total.Load())
	}
	st := s.AdmissionStats()
	if st.Admitted != 24 || st.Running != 0 || st.Waiting != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.Queued == 0 {
		t.Error("24 arrivals over cap 3 should have queued some")
	}
}

// TestAdmissionFIFO asserts waiters are granted in arrival order.
func TestAdmissionFIFO(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 1})
	if _, _, err := s.Admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 6
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Serialize enqueue order: wait until waiter i is visibly queued
		// before starting waiter i+1.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := s.Admit(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release()
		}(i)
		deadline := time.Now().Add(2 * time.Second)
		for s.AdmissionStats().Waiting != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	s.Release() // hand the ticket down the queue
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

// TestAdmissionWaitTime asserts a queued admit reports its wait and the
// queued flag, and an uncontended admit reports neither.
func TestAdmissionWaitTime(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 1})
	wait, queued, err := s.Admit(context.Background())
	if err != nil || queued || wait != 0 {
		t.Fatalf("uncontended admit: wait=%v queued=%v err=%v", wait, queued, err)
	}
	const hold = 40 * time.Millisecond
	done := make(chan struct{})
	go func() {
		time.Sleep(hold)
		s.Release()
		close(done)
	}()
	wait, queued, err = s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !queued {
		t.Error("second admit should report queued")
	}
	if wait < hold/2 {
		t.Errorf("wait %v, expected about %v", wait, hold)
	}
	<-done
	if st := s.AdmissionStats(); st.WaitTime < hold/2 || st.Queued != 1 {
		t.Errorf("stats: %+v", st)
	}
	s.Release()
}

// TestAdmitCancelledWhileQueued asserts a context death in the queue
// returns the cause, leaks no ticket, and keeps later waiters moving.
func TestAdmitCancelledWhileQueued(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 1})
	if _, _, err := s.Admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Admit(ctx)
		errc <- err
	}()
	for s.AdmissionStats().Waiting != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued admit after cancel: %v, want context.Canceled", err)
	}
	if st := s.AdmissionStats(); st.Waiting != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	// The ticket must still cycle: release and re-admit immediately.
	s.Release()
	if _, queued, err := s.Admit(context.Background()); err != nil || queued {
		t.Fatalf("admission broken after queue cancellation: queued=%v err=%v", queued, err)
	}
	s.Release()
}

// TestCapOneSerializes asserts cap=1 reduces the engine to the paper's
// one-query-at-a-time behaviour: no two ticket holders ever overlap.
func TestCapOneSerializes(t *testing.T) {
	s := New(Options{PoolWorkers: 4, MaxQueries: 1})
	var cur atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Admit(context.Background()); err != nil {
				t.Error(err)
				return
			}
			if c := cur.Add(1); c != 1 {
				t.Errorf("%d concurrent holders under cap=1", c)
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			s.Release()
		}()
	}
	wg.Wait()
}

// countJob is a Runner over n units with per-slot exclusivity checks.
type countJob struct {
	n       int64
	slots   int
	next    atomic.Int64
	ran     atomic.Int64
	inSlot  []atomic.Bool
	overlap atomic.Bool
	trace   func(unit int64)
}

func newCountJob(n int64, slots int) *countJob {
	return &countJob{n: n, slots: slots, inSlot: make([]atomic.Bool, slots)}
}

func (j *countJob) Slots() int { return j.slots }

func (j *countJob) RunSlot(slot int) bool {
	u := j.next.Add(1) - 1
	if u >= j.n {
		return false
	}
	if !j.inSlot[slot].CompareAndSwap(false, true) {
		j.overlap.Store(true)
	}
	if j.trace != nil {
		j.trace(u)
	}
	time.Sleep(20 * time.Microsecond)
	j.inSlot[slot].Store(false)
	j.ran.Add(1)
	return true
}

// TestRunDrainsExactly asserts every unit runs exactly once and slots are
// never leased twice concurrently.
func TestRunDrainsExactly(t *testing.T) {
	s := New(Options{PoolWorkers: 4, MaxQueries: 8})
	j := newCountJob(500, 3)
	s.Run(j)
	if j.ran.Load() != 500 {
		t.Errorf("ran %d units, want 500", j.ran.Load())
	}
	if j.overlap.Load() {
		t.Error("slot leased to two workers at once")
	}
}

// TestRoundRobinFairness runs two jobs through a single pool worker and
// asserts their units interleave: once both are active, strict round-robin
// never runs the same job three times in a row.
func TestRoundRobinFairness(t *testing.T) {
	s := New(Options{PoolWorkers: 1, MaxQueries: 8})
	var mu sync.Mutex
	var seq []int
	mkTrace := func(id int) func(int64) {
		return func(int64) {
			mu.Lock()
			seq = append(seq, id)
			mu.Unlock()
		}
	}
	a := newCountJob(50, 2)
	a.trace = mkTrace(0)
	b := newCountJob(50, 2)
	b.trace = mkTrace(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Run(a) }()
	go func() { defer wg.Done(); s.Run(b) }()
	wg.Wait()
	if a.ran.Load() != 50 || b.ran.Load() != 50 {
		t.Fatalf("ran %d/%d units", a.ran.Load(), b.ran.Load())
	}
	// After the second job's first unit, no 3-run of one job may appear
	// (before that, only one job exists and runs alone legitimately).
	firstB := -1
	for i, id := range seq {
		if id == 1 {
			firstB = i
			break
		}
	}
	run := 0
	for i := firstB; i < len(seq)-1 && firstB >= 0; i++ {
		if seq[i] == seq[i+1] {
			run++
			if run >= 2 {
				t.Fatalf("job %d ran %d times consecutively at %d: not round-robin", seq[i], run+1, i)
			}
		} else {
			run = 0
		}
	}
}

// TestPoolIdlesToZero asserts the pool holds no goroutines once drained:
// workers are ephemeral, so an idle scheduler needs no Close.
func TestPoolIdlesToZero(t *testing.T) {
	s := New(Options{PoolWorkers: 4, MaxQueries: 8})
	for i := 0; i < 3; i++ {
		s.Run(newCountJob(100, 4))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		w := s.workers
		s.mu.Unlock()
		if w == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d pool workers still alive after drain", w)
		}
		time.Sleep(time.Millisecond)
	}
}
