// Package sched is the engine-level query scheduler: it multiplexes every
// in-flight query of an engine over one shared worker pool and gates query
// admission behind a FIFO queue with a concurrency cap.
//
// The paper's executor assumes one query owning its morsel workers; a
// production engine serving concurrent traffic cannot spawn opts.Workers
// goroutines per query — N queries would oversubscribe the machine N-fold
// and the Go scheduler, not the engine, would decide who runs. Instead the
// pool holds at most PoolWorkers workers (sized to GOMAXPROCS), each of
// which repeatedly picks a runnable job by weighted fair share (stride
// scheduling over per-tenant virtual time, round-robin among ties),
// leases one of the job's slots, executes exactly one unit of work (a
// morsel, or one breaker-finalize partition), releases the slot, and
// re-picks. Fairness is therefore morsel-granular: a short query never
// waits behind a long scan for more than one morsel per worker.
//
// Workers are ephemeral, like the engine's compile pool: a Run spawns
// workers while fewer than the cap are alive, and a worker exits when no
// job has a runnable slot. An idle engine holds no goroutines and needs
// no Close.
package sched

import (
	"container/list"
	"context"
	"runtime"
	"sync"
	"time"
)

// Runner is one schedulable parallel phase — a pipeline's morsel loop or
// a pipeline-breaker finalization. Slots bounds how many pool workers may
// execute it at once (the per-query worker grant); RunSlot executes one
// unit of work in the exclusively leased slot and reports false when the
// phase has no more work (the call did nothing).
type Runner interface {
	Slots() int
	RunSlot(slot int) bool
}

// Options configures a Scheduler.
type Options struct {
	// PoolWorkers caps concurrently executing pool workers.
	PoolWorkers int
	// MaxQueries caps concurrently admitted queries; arrivals beyond the
	// cap wait in FIFO order.
	MaxQueries int
	// MaxPerTenant additionally caps concurrently admitted queries per
	// tenant (0 = no per-tenant cap). A tenant at its cap queues even
	// while global capacity is free, and its waiters never block other
	// tenants: admission wakes the oldest waiter whose tenant has
	// headroom, skipping capped ones.
	MaxPerTenant int
	// Weights assigns per-tenant fair-share weights for worker picking
	// (default 1): under contention a tenant's jobs receive pool workers
	// in proportion to its weight instead of pure round-robin.
	Weights map[string]int
}

// TenantStats is the per-tenant slice of the admission counters.
type TenantStats struct {
	Admitted int64
	Queued   int64
	WaitTime time.Duration
	Running  int // tickets currently held by the tenant
	Waiting  int // tenant queries in the admission queue
}

// Stats is a snapshot of the admission counters.
type Stats struct {
	Admitted int64         // queries granted a ticket so far
	Queued   int64         // of those, how many had to wait
	WaitTime time.Duration // total time spent waiting for admission
	Running  int           // tickets currently held
	Waiting  int           // queries currently in the admission queue
	// Tenants breaks the counters down by tenant; present only when any
	// query was admitted under a non-empty tenant name.
	Tenants map[string]TenantStats
}

// Scheduler is the shared worker pool plus the admission gate. One per
// engine; safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	jobs    []*job             // active jobs, picked weighted-fair-share
	rr      int                // tie-break cursor into jobs
	workers int                // live pool workers
	tActive map[string]int     // pool workers currently leased, by tenant
	vtime   map[string]float64 // cumulative weighted service, by tenant
	poolMax int
	weights map[string]int

	amu       sync.Mutex
	capacity  int
	perTenant int
	running   int
	tRunning  map[string]int
	waiters   *list.List // of *waiter, front = oldest
	admitted  int64
	queued    int64
	waitNS    int64
	tenants   map[string]*tenantCounters
}

// tenantCounters accumulates one tenant's admission history.
type tenantCounters struct {
	admitted int64
	queued   int64
	waitNS   int64
}

// waiter is one queued admission request.
type waiter struct {
	ch     chan struct{}
	tenant string
}

// job tracks one Runner's pool state: free slot ids, active executors,
// and the completion signal Run blocks on.
type job struct {
	r        Runner
	tenant   string
	weight   int
	free     []int // stack of free slot ids (top = next lease)
	active   int
	drained  bool
	signaled bool
	done     chan struct{}
}

// New creates a scheduler. PoolWorkers and MaxQueries must be >= 1.
func New(o Options) *Scheduler {
	if o.PoolWorkers < 1 {
		o.PoolWorkers = 1
	}
	if o.MaxQueries < 1 {
		o.MaxQueries = 1
	}
	weights := make(map[string]int, len(o.Weights))
	for t, w := range o.Weights {
		weights[t] = w
	}
	return &Scheduler{poolMax: o.PoolWorkers, capacity: o.MaxQueries,
		perTenant: o.MaxPerTenant, weights: weights,
		tActive:  make(map[string]int),
		vtime:    make(map[string]float64),
		tRunning: make(map[string]int),
		tenants:  make(map[string]*tenantCounters),
		waiters:  list.New()}
}

// weightOf resolves a tenant's fair-share weight (default 1).
func (s *Scheduler) weightOf(tenant string) int {
	if w := s.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// PoolSize returns the worker-pool cap.
func (s *Scheduler) PoolSize() int { return s.poolMax }

// Admit blocks until the caller holds one of the MaxQueries execution
// tickets (FIFO among waiters) or ctx is cancelled. It reports how long
// the caller waited and whether it had to queue at all. On error the
// caller holds no ticket and must not call Release.
func (s *Scheduler) Admit(ctx context.Context) (wait time.Duration, queuedQ bool, err error) {
	return s.AdmitTenant(ctx, "")
}

// AdmitTenant is Admit under a tenant identity: the ticket additionally
// counts against the tenant's MaxPerTenant quota, and the wait (if any)
// is charged to the tenant's admission counters. Admission stays FIFO
// among waiters whose tenants have headroom; a capped tenant's waiters
// are skipped without blocking younger waiters of other tenants.
func (s *Scheduler) AdmitTenant(ctx context.Context, tenant string) (wait time.Duration, queuedQ bool, err error) {
	s.amu.Lock()
	if s.canAdmitLocked(tenant) && !s.eligibleWaiterLocked() {
		s.grantLocked(tenant)
		s.amu.Unlock()
		return 0, false, nil
	}
	w := &waiter{ch: make(chan struct{}), tenant: tenant}
	el := s.waiters.PushBack(w)
	s.queued++
	s.tcLocked(tenant).queued++
	s.amu.Unlock()
	t0 := time.Now()
	select {
	case <-w.ch:
		// ReleaseTenant granted us the freed slot; all counters were
		// already transferred under its lock.
	case <-ctx.Done():
		s.amu.Lock()
		select {
		case <-w.ch:
			// The grant raced the cancellation; keep the ticket. The
			// caller's context is dead, so the query will cancel on its
			// first preemption check and release the ticket normally.
		default:
			s.waiters.Remove(el)
			wait = time.Since(t0)
			s.waitNS += int64(wait)
			s.tcLocked(tenant).waitNS += int64(wait)
			s.amu.Unlock()
			return wait, true, context.Cause(ctx)
		}
		s.amu.Unlock()
	}
	wait = time.Since(t0)
	s.amu.Lock()
	s.waitNS += int64(wait)
	s.tcLocked(tenant).waitNS += int64(wait)
	s.amu.Unlock()
	return wait, true, nil
}

// canAdmitLocked reports whether a tenant has both global and per-tenant
// headroom for one more ticket.
func (s *Scheduler) canAdmitLocked(tenant string) bool {
	if s.running >= s.capacity {
		return false
	}
	return s.perTenant <= 0 || tenant == "" || s.tRunning[tenant] < s.perTenant
}

// eligibleWaiterLocked reports whether any queued waiter could be granted
// a ticket right now; a fresh arrival must not overtake it.
func (s *Scheduler) eligibleWaiterLocked() bool {
	for el := s.waiters.Front(); el != nil; el = el.Next() {
		if s.canAdmitLocked(el.Value.(*waiter).tenant) {
			return true
		}
	}
	return false
}

// grantLocked hands a ticket to tenant, taking global and per-tenant
// slots and counting the admission.
func (s *Scheduler) grantLocked(tenant string) {
	s.running++
	s.admitted++
	tc := s.tcLocked(tenant)
	tc.admitted++
	s.tRunning[tenant]++
}

// tcLocked returns (creating if needed) tenant's counter record.
func (s *Scheduler) tcLocked(tenant string) *tenantCounters {
	tc := s.tenants[tenant]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[tenant] = tc
	}
	return tc
}

// Release returns a ticket. If an eligible query is waiting, its slot is
// granted before the lock drops so admission order is preserved.
func (s *Scheduler) Release() { s.ReleaseTenant("") }

// ReleaseTenant returns a ticket held under a tenant identity and wakes
// the oldest waiter (if any) whose tenant now has headroom. Unlike a
// direct hand-over, the freed slot is re-counted through grantLocked so
// per-tenant occupancy moves from the releasing tenant to the woken one.
func (s *Scheduler) ReleaseTenant(tenant string) {
	s.amu.Lock()
	s.running--
	if s.tRunning[tenant] > 0 {
		s.tRunning[tenant]--
	}
	for el := s.waiters.Front(); el != nil; el = el.Next() {
		w := el.Value.(*waiter)
		if !s.canAdmitLocked(w.tenant) {
			continue
		}
		s.waiters.Remove(el)
		s.grantLocked(w.tenant)
		close(w.ch)
		break
	}
	s.amu.Unlock()
}

// AdmissionStats snapshots the admission counters.
func (s *Scheduler) AdmissionStats() Stats {
	s.amu.Lock()
	defer s.amu.Unlock()
	st := Stats{Admitted: s.admitted, Queued: s.queued,
		WaitTime: time.Duration(s.waitNS),
		Running:  s.running, Waiting: s.waiters.Len()}
	if len(s.tenants) > 0 {
		st.Tenants = make(map[string]TenantStats, len(s.tenants))
		for t, tc := range s.tenants {
			st.Tenants[t] = TenantStats{Admitted: tc.admitted,
				Queued: tc.queued, WaitTime: time.Duration(tc.waitNS),
				Running: s.tRunning[t]}
		}
		for el := s.waiters.Front(); el != nil; el = el.Next() {
			w := el.Value.(*waiter)
			ts := st.Tenants[w.tenant]
			ts.Waiting++
			st.Tenants[w.tenant] = ts
		}
	}
	return st
}

// Run schedules r over the pool and blocks until it is drained and every
// executor has returned. Callers run on their own goroutine (a query's
// coordinator); only r's slots execute on pool workers.
func (s *Scheduler) Run(r Runner) { s.RunTenant(r, "") }

// RunTenant is Run under a tenant identity: pool workers are shared by
// weighted fair-share, so under contention the tenant's phases receive
// workers in proportion to its configured weight.
func (s *Scheduler) RunTenant(r Runner, tenant string) {
	n := r.Slots()
	if n < 1 {
		n = 1
	}
	j := &job{r: r, tenant: tenant, weight: s.weightOf(tenant),
		done: make(chan struct{})}
	for i := n - 1; i >= 0; i-- {
		j.free = append(j.free, i) // top of stack = slot 0
	}
	s.mu.Lock()
	if len(s.jobs) == 0 {
		// Pool going from idle to busy: rebase virtual time so the
		// floats never grow without bound over a server's lifetime.
		clear(s.vtime)
	} else {
		// A tenant returning from idle re-enters at the current virtual
		// time floor instead of the low vtime it parked at — otherwise
		// its accumulated "credit" would let it monopolize the pool
		// until it caught up with tenants that kept running.
		floor := s.vtime[s.jobs[0].tenant]
		for _, other := range s.jobs[1:] {
			if v := s.vtime[other.tenant]; v < floor {
				floor = v
			}
		}
		if s.vtime[tenant] < floor {
			s.vtime[tenant] = floor
		}
	}
	s.jobs = append(s.jobs, j)
	spawn := s.poolMax - s.workers
	if spawn > n {
		spawn = n
	}
	s.workers += spawn
	s.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go s.worker()
	}
	<-j.done
}

// worker is the pool loop: pick the runnable job of the least-served
// tenant, run one unit, release the slot, repeat; exit when nothing
// anywhere is runnable.
func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		j, slot := s.pickLocked()
		if j == nil {
			s.workers--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		more := j.r.RunSlot(slot)
		// Yield between units: a pool worker is a CPU-bound goroutine
		// that otherwise holds its OS thread for a full preemption
		// quantum (~10ms), starving just-woken query coordinators and
		// connection handlers whenever GOMAXPROCS is small. A morsel is
		// orders of magnitude longer than the yield, so throughput is
		// unaffected; tail latency under saturation improves sharply.
		runtime.Gosched()
		s.mu.Lock()
		j.free = append(j.free, slot)
		j.active--
		s.tActive[j.tenant]--
		if !more && !j.drained {
			j.drained = true
			s.removeLocked(j)
		}
		if j.drained && j.active == 0 && !j.signaled {
			j.signaled = true
			close(j.done)
		}
	}
}

// pickLocked leases a slot from a runnable job of the tenant with the
// lowest virtual time, or returns nil when no job can use a worker.
//
// Fairness is stride scheduling over cumulative service: each lease
// advances the granted tenant's virtual time by 1/weight, so over any
// contended window tenants receive work units in proportion to their
// weights. Cumulative accounting matters because instantaneous shares
// cannot express weights on a small pool — with one worker the leased
// counts are always 0 or 1 at pick time and every policy collapses to
// alternation, whereas virtual time makes a weight-4 tenant win four
// consecutive leases before a weight-1 tenant wins one. Ties resolve
// round-robin from the rr cursor, so a single-tenant (or untenanted)
// workload degenerates to the original rotation and keeps its
// morsel-granular fairness.
func (s *Scheduler) pickLocked() (*job, int) {
	n := len(s.jobs)
	var best *job
	bestIdx := -1
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		j := s.jobs[idx]
		if j.drained || len(j.free) == 0 {
			continue
		}
		if best == nil || s.vtime[j.tenant] < s.vtime[best.tenant] {
			best, bestIdx = j, idx
		}
	}
	if best == nil {
		return nil, 0
	}
	s.rr = (bestIdx + 1) % n
	slot := best.free[len(best.free)-1]
	best.free = best.free[:len(best.free)-1]
	best.active++
	s.tActive[best.tenant]++
	s.vtime[best.tenant] += 1 / float64(best.weight)
	return best, slot
}

// removeLocked drops a drained job from the pick list, keeping the
// round-robin cursor stable relative to the remaining jobs.
func (s *Scheduler) removeLocked(j *job) {
	for i, x := range s.jobs {
		if x == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			if s.rr > i {
				s.rr--
			}
			break
		}
	}
	if len(s.jobs) == 0 {
		s.rr = 0
	} else {
		s.rr %= len(s.jobs)
	}
}
