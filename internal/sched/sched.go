// Package sched is the engine-level query scheduler: it multiplexes every
// in-flight query of an engine over one shared worker pool and gates query
// admission behind a FIFO queue with a concurrency cap.
//
// The paper's executor assumes one query owning its morsel workers; a
// production engine serving concurrent traffic cannot spawn opts.Workers
// goroutines per query — N queries would oversubscribe the machine N-fold
// and the Go scheduler, not the engine, would decide who runs. Instead the
// pool holds at most PoolWorkers workers (sized to GOMAXPROCS), each of
// which repeatedly picks the next runnable job round-robin, leases one of
// the job's slots, executes exactly one unit of work (a morsel, or one
// breaker-finalize partition), releases the slot, and re-picks. Fairness
// is therefore morsel-granular: a short query never waits behind a long
// scan for more than one morsel per worker.
//
// Workers are ephemeral, like the engine's compile pool: a Run spawns
// workers while fewer than the cap are alive, and a worker exits when no
// job has a runnable slot. An idle engine holds no goroutines and needs
// no Close.
package sched

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// Runner is one schedulable parallel phase — a pipeline's morsel loop or
// a pipeline-breaker finalization. Slots bounds how many pool workers may
// execute it at once (the per-query worker grant); RunSlot executes one
// unit of work in the exclusively leased slot and reports false when the
// phase has no more work (the call did nothing).
type Runner interface {
	Slots() int
	RunSlot(slot int) bool
}

// Options configures a Scheduler.
type Options struct {
	// PoolWorkers caps concurrently executing pool workers.
	PoolWorkers int
	// MaxQueries caps concurrently admitted queries; arrivals beyond the
	// cap wait in FIFO order.
	MaxQueries int
}

// Stats is a snapshot of the admission counters.
type Stats struct {
	Admitted int64         // queries granted a ticket so far
	Queued   int64         // of those, how many had to wait
	WaitTime time.Duration // total time spent waiting for admission
	Running  int           // tickets currently held
	Waiting  int           // queries currently in the admission queue
}

// Scheduler is the shared worker pool plus the admission gate. One per
// engine; safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	jobs    []*job // active jobs, picked round-robin
	rr      int    // round-robin cursor into jobs
	workers int    // live pool workers
	poolMax int

	amu      sync.Mutex
	capacity int
	running  int
	waiters  *list.List // of chan struct{}, front = next admitted
	admitted int64
	queued   int64
	waitNS   int64
}

// job tracks one Runner's pool state: free slot ids, active executors,
// and the completion signal Run blocks on.
type job struct {
	r        Runner
	free     []int // stack of free slot ids (top = next lease)
	active   int
	drained  bool
	signaled bool
	done     chan struct{}
}

// New creates a scheduler. PoolWorkers and MaxQueries must be >= 1.
func New(o Options) *Scheduler {
	if o.PoolWorkers < 1 {
		o.PoolWorkers = 1
	}
	if o.MaxQueries < 1 {
		o.MaxQueries = 1
	}
	return &Scheduler{poolMax: o.PoolWorkers, capacity: o.MaxQueries,
		waiters: list.New()}
}

// PoolSize returns the worker-pool cap.
func (s *Scheduler) PoolSize() int { return s.poolMax }

// Admit blocks until the caller holds one of the MaxQueries execution
// tickets (FIFO among waiters) or ctx is cancelled. It reports how long
// the caller waited and whether it had to queue at all. On error the
// caller holds no ticket and must not call Release.
func (s *Scheduler) Admit(ctx context.Context) (wait time.Duration, queuedQ bool, err error) {
	s.amu.Lock()
	if s.running < s.capacity && s.waiters.Len() == 0 {
		s.running++
		s.admitted++
		s.amu.Unlock()
		return 0, false, nil
	}
	ch := make(chan struct{})
	el := s.waiters.PushBack(ch)
	s.queued++
	s.amu.Unlock()
	t0 := time.Now()
	select {
	case <-ch:
		// Release handed us its ticket directly (running stays constant).
	case <-ctx.Done():
		s.amu.Lock()
		select {
		case <-ch:
			// The grant raced the cancellation; keep the ticket. The
			// caller's context is dead, so the query will cancel on its
			// first preemption check and release the ticket normally.
		default:
			s.waiters.Remove(el)
			wait = time.Since(t0)
			s.waitNS += int64(wait)
			s.amu.Unlock()
			return wait, true, context.Cause(ctx)
		}
		s.amu.Unlock()
	}
	wait = time.Since(t0)
	s.amu.Lock()
	s.admitted++
	s.waitNS += int64(wait)
	s.amu.Unlock()
	return wait, true, nil
}

// Release returns a ticket. If queries are waiting, the ticket passes to
// the oldest waiter without touching the running count.
func (s *Scheduler) Release() {
	s.amu.Lock()
	if front := s.waiters.Front(); front != nil {
		s.waiters.Remove(front)
		close(front.Value.(chan struct{}))
	} else {
		s.running--
	}
	s.amu.Unlock()
}

// AdmissionStats snapshots the admission counters.
func (s *Scheduler) AdmissionStats() Stats {
	s.amu.Lock()
	defer s.amu.Unlock()
	return Stats{Admitted: s.admitted, Queued: s.queued,
		WaitTime: time.Duration(s.waitNS),
		Running:  s.running, Waiting: s.waiters.Len()}
}

// Run schedules r over the pool and blocks until it is drained and every
// executor has returned. Callers run on their own goroutine (a query's
// coordinator); only r's slots execute on pool workers.
func (s *Scheduler) Run(r Runner) {
	n := r.Slots()
	if n < 1 {
		n = 1
	}
	j := &job{r: r, done: make(chan struct{})}
	for i := n - 1; i >= 0; i-- {
		j.free = append(j.free, i) // top of stack = slot 0
	}
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	spawn := s.poolMax - s.workers
	if spawn > n {
		spawn = n
	}
	s.workers += spawn
	s.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go s.worker()
	}
	<-j.done
}

// worker is the pool loop: pick the next runnable job round-robin, run one
// unit, release the slot, repeat; exit when nothing anywhere is runnable.
func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		j, slot := s.pickLocked()
		if j == nil {
			s.workers--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		more := j.r.RunSlot(slot)
		s.mu.Lock()
		j.free = append(j.free, slot)
		j.active--
		if !more && !j.drained {
			j.drained = true
			s.removeLocked(j)
		}
		if j.drained && j.active == 0 && !j.signaled {
			j.signaled = true
			close(j.done)
		}
	}
}

// pickLocked leases a slot from the next runnable job after the
// round-robin cursor, or returns nil when no job can use a worker.
func (s *Scheduler) pickLocked() (*job, int) {
	n := len(s.jobs)
	for i := 0; i < n; i++ {
		j := s.jobs[(s.rr+i)%n]
		if j.drained || len(j.free) == 0 {
			continue
		}
		s.rr = (s.rr + i + 1) % n
		slot := j.free[len(j.free)-1]
		j.free = j.free[:len(j.free)-1]
		j.active++
		return j, slot
	}
	return nil, 0
}

// removeLocked drops a drained job from the pick list, keeping the
// round-robin cursor stable relative to the remaining jobs.
func (s *Scheduler) removeLocked(j *job) {
	for i, x := range s.jobs {
		if x == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			if s.rr > i {
				s.rr--
			}
			break
		}
	}
	if len(s.jobs) == 0 {
		s.rr = 0
	} else {
		s.rr %= len(s.jobs)
	}
}
