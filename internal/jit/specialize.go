package jit

import (
	"encoding/binary"
	"math"

	"aqe/internal/ir"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// Operand-shape specialization: a value-threaded backend lives or dies by
// the number of indirect calls per tuple. Reading a register or a constant
// through a leaf closure costs a full call; instead, every hot node
// inspects its operands' shapes at compile time (register slot, immediate,
// or nested tree) and builds a closure that accesses registers and
// immediates directly. This is the closure-compilation analogue of
// instruction selection with register/immediate addressing modes.

type opndKind uint8

const (
	oReg opndKind = iota
	oImm
	oTree
)

type opnd struct {
	kind opndKind
	slot int32
	imm  uint64
	fn   valFn
}

func (bc *bcompiler) opnd(v *ir.Value) opnd {
	switch {
	case v.IsConst():
		return opnd{kind: oImm, imm: v.Const}
	case v.Op == ir.OpParam || bc.mat[v]:
		return opnd{kind: oReg, slot: bc.slotOf(v)}
	default:
		return opnd{kind: oTree, fn: bc.val(v)}
	}
}

// fn returns a generic getter for the operand (used by cold paths).
func (bc *bcompiler) fnOf(o opnd) valFn {
	switch o.kind {
	case oReg:
		s := o.slot
		return func(regs []uint64, fr *frame) uint64 { return regs[s] }
	case oImm:
		c := o.imm
		return func(regs []uint64, fr *frame) uint64 { return c }
	default:
		return o.fn
	}
}

// binI64 builds a specialized i64 binary node for add/sub/mul.
func (bc *bcompiler) binI64(op ir.Op, v *ir.Value) valFn {
	l, r := bc.opnd(v.Args[0]), bc.opnd(v.Args[1])
	type f2 = func(x, y uint64) uint64
	var apply f2
	switch op {
	case ir.OpAdd:
		apply = func(x, y uint64) uint64 { return x + y }
	case ir.OpSub:
		apply = func(x, y uint64) uint64 { return x - y }
	case ir.OpMul:
		apply = func(x, y uint64) uint64 { return x * y }
	case ir.OpAnd:
		apply = func(x, y uint64) uint64 { return x & y }
	case ir.OpOr:
		apply = func(x, y uint64) uint64 { return x | y }
	case ir.OpXor:
		apply = func(x, y uint64) uint64 { return x ^ y }
	case ir.OpShl:
		apply = func(x, y uint64) uint64 { return x << (y & 63) }
	case ir.OpLShr:
		apply = func(x, y uint64) uint64 { return x >> (y & 63) }
	case ir.OpAShr:
		apply = func(x, y uint64) uint64 { return uint64(int64(x) >> (y & 63)) }
	}
	// Hot shapes get dedicated closures without the apply call for the
	// add/mul cases that dominate generated query code.
	switch {
	case l.kind == oReg && r.kind == oReg:
		ls, rs := l.slot, r.slot
		switch op {
		case ir.OpAdd:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] + regs[rs] }
		case ir.OpSub:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] - regs[rs] }
		case ir.OpMul:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] * regs[rs] }
		}
		return func(regs []uint64, fr *frame) uint64 { return apply(regs[ls], regs[rs]) }
	case l.kind == oReg && r.kind == oImm:
		ls, c := l.slot, r.imm
		switch op {
		case ir.OpAdd:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] + c }
		case ir.OpSub:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] - c }
		case ir.OpMul:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] * c }
		case ir.OpAnd:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] & c }
		case ir.OpLShr:
			sh := c & 63
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] >> sh }
		case ir.OpXor:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] ^ c }
		}
		return func(regs []uint64, fr *frame) uint64 { return apply(regs[ls], c) }
	case l.kind == oImm && r.kind == oReg:
		c, rs := l.imm, r.slot
		return func(regs []uint64, fr *frame) uint64 { return apply(c, regs[rs]) }
	case l.kind == oTree && r.kind == oReg:
		lf, rs := l.fn, r.slot
		switch op {
		case ir.OpAdd:
			return func(regs []uint64, fr *frame) uint64 { return lf(regs, fr) + regs[rs] }
		case ir.OpMul:
			return func(regs []uint64, fr *frame) uint64 { return lf(regs, fr) * regs[rs] }
		}
		return func(regs []uint64, fr *frame) uint64 { return apply(lf(regs, fr), regs[rs]) }
	case l.kind == oReg && r.kind == oTree:
		ls, rf := l.slot, r.fn
		switch op {
		case ir.OpAdd:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] + rf(regs, fr) }
		case ir.OpMul:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] * rf(regs, fr) }
		case ir.OpXor:
			return func(regs []uint64, fr *frame) uint64 { return regs[ls] ^ rf(regs, fr) }
		}
		return func(regs []uint64, fr *frame) uint64 { return apply(regs[ls], rf(regs, fr)) }
	case l.kind == oTree && r.kind == oImm:
		lf, c := l.fn, r.imm
		return func(regs []uint64, fr *frame) uint64 { return apply(lf(regs, fr), c) }
	default:
		lf, rf := bc.fnOf(l), bc.fnOf(r)
		return func(regs []uint64, fr *frame) uint64 { return apply(lf(regs, fr), rf(regs, fr)) }
	}
}

// icmpNode builds a specialized i64 comparison producing 0/1.
func (bc *bcompiler) icmpNode(v *ir.Value) valFn {
	l, r := bc.opnd(v.Args[0]), bc.opnd(v.Args[1])
	pred := v.Pred
	cmp := func(x, y uint64) bool { return icmpApply(pred, x, y) }
	switch {
	case l.kind == oReg && r.kind == oReg:
		ls, rs := l.slot, r.slot
		switch pred {
		case ir.Eq:
			return func(regs []uint64, fr *frame) uint64 { return b2u(regs[ls] == regs[rs]) }
		case ir.SLt:
			return func(regs []uint64, fr *frame) uint64 {
				return b2u(int64(regs[ls]) < int64(regs[rs]))
			}
		}
		return func(regs []uint64, fr *frame) uint64 { return b2u(cmp(regs[ls], regs[rs])) }
	case l.kind == oReg && r.kind == oImm:
		ls, c := l.slot, r.imm
		switch pred {
		case ir.Eq:
			return func(regs []uint64, fr *frame) uint64 { return b2u(regs[ls] == c) }
		case ir.SLe:
			ci := int64(c)
			return func(regs []uint64, fr *frame) uint64 { return b2u(int64(regs[ls]) <= ci) }
		case ir.SLt:
			ci := int64(c)
			return func(regs []uint64, fr *frame) uint64 { return b2u(int64(regs[ls]) < ci) }
		case ir.SGe:
			ci := int64(c)
			return func(regs []uint64, fr *frame) uint64 { return b2u(int64(regs[ls]) >= ci) }
		case ir.SGt:
			ci := int64(c)
			return func(regs []uint64, fr *frame) uint64 { return b2u(int64(regs[ls]) > ci) }
		}
		return func(regs []uint64, fr *frame) uint64 { return b2u(cmp(regs[ls], c)) }
	case l.kind == oTree && r.kind == oImm:
		lf, c := l.fn, r.imm
		return func(regs []uint64, fr *frame) uint64 { return b2u(cmp(lf(regs, fr), c)) }
	case l.kind == oTree && r.kind == oReg:
		lf, rs := l.fn, r.slot
		return func(regs []uint64, fr *frame) uint64 { return b2u(cmp(lf(regs, fr), regs[rs])) }
	default:
		lf, rf := bc.fnOf(l), bc.fnOf(r)
		return func(regs []uint64, fr *frame) uint64 { return b2u(cmp(lf(regs, fr), rf(regs, fr))) }
	}
}

func icmpApply(pred ir.Pred, x, y uint64) bool {
	switch pred {
	case ir.Eq:
		return x == y
	case ir.Ne:
		return x != y
	case ir.SLt:
		return int64(x) < int64(y)
	case ir.SLe:
		return int64(x) <= int64(y)
	case ir.SGt:
		return int64(x) > int64(y)
	case ir.SGe:
		return int64(x) >= int64(y)
	case ir.ULt:
		return x < y
	case ir.ULe:
		return x <= y
	case ir.UGt:
		return x > y
	default:
		return x >= y
	}
}

// addrParts decomposes a load/store address into (base, idx, scale, disp)
// when it is a non-materialized GEP, enabling the fused addressing-mode
// closures below.
type addrMode struct {
	// ok: base/idx decomposition valid; otherwise use gen.
	ok          bool
	baseImm     uint64
	baseSlot    int32
	baseIsImm   bool
	idxSlot     int32
	idxImm      uint64
	idxIsImm    bool
	scale, disp uint64
	gen         valFn
}

func (bc *bcompiler) addr(v *ir.Value) addrMode {
	if v.IsInstr() && v.Op == ir.OpGEP && !bc.mat[v] {
		base, idx := bc.opnd(v.Args[0]), bc.opnd(v.Args[1])
		if base.kind != oTree && idx.kind != oTree {
			return addrMode{
				ok:      true,
				baseImm: base.imm, baseSlot: base.slot, baseIsImm: base.kind == oImm,
				idxImm: idx.imm, idxSlot: idx.slot, idxIsImm: idx.kind == oImm,
				scale: v.Lit, disp: uint64(int64(v.Lit2)),
			}
		}
		if base.kind != oTree && idx.kind == oTree {
			// Hash-table walks: base register plus a computed index.
			it := idx.fn
			scale, disp := v.Lit, uint64(int64(v.Lit2))
			if base.kind == oReg {
				bs := base.slot
				return addrMode{gen: func(regs []uint64, fr *frame) uint64 {
					return regs[bs] + it(regs, fr)*scale + disp
				}}
			}
			bi := base.imm + disp
			return addrMode{gen: func(regs []uint64, fr *frame) uint64 {
				return bi + it(regs, fr)*scale
			}}
		}
	}
	return addrMode{gen: bc.val(v)}
}

// resolve builds the address-computation closure.
func (m addrMode) resolve(bc *bcompiler) valFn {
	if !m.ok {
		return m.gen
	}
	scale, disp := m.scale, m.disp
	switch {
	case m.baseIsImm && !m.idxIsImm:
		base := m.baseImm + disp
		is := m.idxSlot
		switch scale {
		case 1:
			return func(regs []uint64, fr *frame) uint64 { return base + regs[is] }
		case 8:
			return func(regs []uint64, fr *frame) uint64 { return base + regs[is]*8 }
		case 16:
			return func(regs []uint64, fr *frame) uint64 { return base + regs[is]*16 }
		default:
			return func(regs []uint64, fr *frame) uint64 { return base + regs[is]*scale }
		}
	case !m.baseIsImm && m.idxIsImm:
		bs := m.baseSlot
		off := m.idxImm*scale + disp
		return func(regs []uint64, fr *frame) uint64 { return regs[bs] + off }
	case !m.baseIsImm && !m.idxIsImm:
		bs, is := m.baseSlot, m.idxSlot
		switch scale {
		case 8:
			return func(regs []uint64, fr *frame) uint64 { return regs[bs] + regs[is]*8 + disp }
		default:
			return func(regs []uint64, fr *frame) uint64 { return regs[bs] + regs[is]*scale + disp }
		}
	default:
		c := m.baseImm + m.idxImm*scale + disp
		return func(regs []uint64, fr *frame) uint64 { return c }
	}
}

// loadNode builds a width-specialized load with the address fused in.
func (bc *bcompiler) loadNode(v *ir.Value) valFn {
	am := bc.addr(v.Args[0])
	w := v.Type.Width()
	// The hottest query pattern: column load at constant base with a
	// register index.
	if am.ok && am.baseIsImm && !am.idxIsImm {
		base := am.baseImm + am.disp
		is := am.idxSlot
		scale := am.scale
		switch w {
		case 8:
			switch scale {
			case 8:
				return func(regs []uint64, fr *frame) uint64 {
					return binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*8))
				}
			case 16:
				return func(regs []uint64, fr *frame) uint64 {
					return binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*16))
				}
			default:
				return func(regs []uint64, fr *frame) uint64 {
					return binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*scale))
				}
			}
		case 1:
			return func(regs []uint64, fr *frame) uint64 {
				return uint64(fr.mem.Seg(base + regs[is]*scale)[0])
			}
		}
	}
	af := am.resolve(bc)
	switch w {
	case 1:
		return func(regs []uint64, fr *frame) uint64 {
			return uint64(fr.mem.Seg(af(regs, fr))[0])
		}
	case 2:
		return func(regs []uint64, fr *frame) uint64 {
			return uint64(binary.LittleEndian.Uint16(fr.mem.Seg(af(regs, fr))))
		}
	case 4:
		return func(regs []uint64, fr *frame) uint64 {
			return uint64(binary.LittleEndian.Uint32(fr.mem.Seg(af(regs, fr))))
		}
	default:
		return func(regs []uint64, fr *frame) uint64 {
			return binary.LittleEndian.Uint64(fr.mem.Seg(af(regs, fr)))
		}
	}
}

// storeNode builds a width-specialized store with the address fused in.
func (bc *bcompiler) storeNode(v *ir.Value) opFn {
	am := bc.addr(v.Args[0])
	af := am.resolve(bc)
	val := bc.opnd(v.Args[1])
	w := v.Args[1].Type.Width()
	if w == 8 && val.kind == oReg {
		vs := val.slot
		return func(regs []uint64, fr *frame) {
			binary.LittleEndian.PutUint64(fr.mem.Seg(af(regs, fr)), regs[vs])
		}
	}
	vf := bc.fnOf(val)
	switch w {
	case 1:
		return func(regs []uint64, fr *frame) {
			fr.mem.Seg(af(regs, fr))[0] = byte(vf(regs, fr))
		}
	case 2:
		return func(regs []uint64, fr *frame) {
			binary.LittleEndian.PutUint16(fr.mem.Seg(af(regs, fr)), uint16(vf(regs, fr)))
		}
	case 4:
		return func(regs []uint64, fr *frame) {
			binary.LittleEndian.PutUint32(fr.mem.Seg(af(regs, fr)), uint32(vf(regs, fr)))
		}
	default:
		return func(regs []uint64, fr *frame) {
			binary.LittleEndian.PutUint64(fr.mem.Seg(af(regs, fr)), vf(regs, fr))
		}
	}
}

// checkedNode builds the throwing fused overflow node with operand shapes.
func (bc *bcompiler) checkedNode(pair *ir.Value) valFn {
	l, r := bc.opnd(pair.Args[0]), bc.opnd(pair.Args[1])
	op := pair.Op
	if l.kind == oReg && r.kind == oReg {
		ls, rs := l.slot, r.slot
		switch op {
		case ir.OpSAddOvf:
			return func(regs []uint64, fr *frame) uint64 {
				x, y := int64(regs[ls]), int64(regs[rs])
				s := x + y
				if (x^s)&(y^s) < 0 {
					rt.Throw(rt.TrapOverflow)
				}
				return uint64(s)
			}
		case ir.OpSSubOvf:
			return func(regs []uint64, fr *frame) uint64 {
				x, y := int64(regs[ls]), int64(regs[rs])
				s := x - y
				if (x^y)&(x^s) < 0 {
					rt.Throw(rt.TrapOverflow)
				}
				return uint64(s)
			}
		default:
			return func(regs []uint64, fr *frame) uint64 {
				v, o := vm.MulOverflow(int64(regs[ls]), int64(regs[rs]))
				if o {
					rt.Throw(rt.TrapOverflow)
				}
				return uint64(v)
			}
		}
	}
	lf, rf := bc.fnOf(l), bc.fnOf(r)
	switch op {
	case ir.OpSAddOvf:
		return func(regs []uint64, fr *frame) uint64 {
			x, y := int64(lf(regs, fr)), int64(rf(regs, fr))
			s := x + y
			if (x^s)&(y^s) < 0 {
				rt.Throw(rt.TrapOverflow)
			}
			return uint64(s)
		}
	case ir.OpSSubOvf:
		return func(regs []uint64, fr *frame) uint64 {
			x, y := int64(lf(regs, fr)), int64(rf(regs, fr))
			s := x - y
			if (x^y)&(x^s) < 0 {
				rt.Throw(rt.TrapOverflow)
			}
			return uint64(s)
		}
	default:
		return func(regs []uint64, fr *frame) uint64 {
			v, o := vm.MulOverflow(int64(lf(regs, fr)), int64(rf(regs, fr)))
			if o {
				rt.Throw(rt.TrapOverflow)
			}
			return uint64(v)
		}
	}
}

// condBrTerm builds a fused compare-and-branch terminator when the block's
// condition is a private i64 comparison; returns nil when not applicable.
func (bc *bcompiler) condBrTerm(b *ir.Block, moves []pmove) termFn {
	t := b.Term
	cond := t.Args[0]
	if !cond.IsInstr() || cond.Op != ir.OpICmp || bc.mat[cond] || cond.Block != b {
		return nil
	}
	then, els := bc.blockIdx[t.Targets[0]], bc.blockIdx[t.Targets[1]]
	l, r := bc.opnd(cond.Args[0]), bc.opnd(cond.Args[1])
	pred := cond.Pred

	if len(moves) == 0 && l.kind == oReg {
		switch {
		case r.kind == oReg:
			ls, rs := l.slot, r.slot
			switch pred {
			case ir.SLt:
				return func(regs []uint64, fr *frame) int {
					if int64(regs[ls]) < int64(regs[rs]) {
						return then
					}
					return els
				}
			case ir.Eq:
				return func(regs []uint64, fr *frame) int {
					if regs[ls] == regs[rs] {
						return then
					}
					return els
				}
			case ir.Ne:
				return func(regs []uint64, fr *frame) int {
					if regs[ls] != regs[rs] {
						return then
					}
					return els
				}
			}
			p := pred
			return func(regs []uint64, fr *frame) int {
				if icmpApply(p, regs[ls], regs[rs]) {
					return then
				}
				return els
			}
		case r.kind == oImm:
			ls, c := l.slot, r.imm
			switch pred {
			case ir.Eq:
				return func(regs []uint64, fr *frame) int {
					if regs[ls] == c {
						return then
					}
					return els
				}
			case ir.Ne:
				return func(regs []uint64, fr *frame) int {
					if regs[ls] != c {
						return then
					}
					return els
				}
			case ir.SLe:
				ci := int64(c)
				return func(regs []uint64, fr *frame) int {
					if int64(regs[ls]) <= ci {
						return then
					}
					return els
				}
			case ir.SLt:
				ci := int64(c)
				return func(regs []uint64, fr *frame) int {
					if int64(regs[ls]) < ci {
						return then
					}
					return els
				}
			}
			p := pred
			return func(regs []uint64, fr *frame) int {
				if icmpApply(p, regs[ls], c) {
					return then
				}
				return els
			}
		}
	}
	// General fused compare-and-branch with moves.
	lf, rf := bc.fnOf(l), bc.fnOf(r)
	p := pred
	if len(moves) == 0 {
		return func(regs []uint64, fr *frame) int {
			if icmpApply(p, lf(regs, fr), rf(regs, fr)) {
				return then
			}
			return els
		}
	}
	mv := moves
	return func(regs []uint64, fr *frame) int {
		c := icmpApply(p, lf(regs, fr), rf(regs, fr))
		runMoves(mv, regs)
		if c {
			return then
		}
		return els
	}
}

// fdivNode and friends keep float math out of the generic fallback.
func (bc *bcompiler) fbinNode(op ir.Op, v *ir.Value) valFn {
	l, r := bc.fnOf(bc.opnd(v.Args[0])), bc.fnOf(bc.opnd(v.Args[1]))
	switch op {
	case ir.OpFAdd:
		return func(regs []uint64, fr *frame) uint64 {
			return math.Float64bits(math.Float64frombits(l(regs, fr)) + math.Float64frombits(r(regs, fr)))
		}
	case ir.OpFSub:
		return func(regs []uint64, fr *frame) uint64 {
			return math.Float64bits(math.Float64frombits(l(regs, fr)) - math.Float64frombits(r(regs, fr)))
		}
	case ir.OpFMul:
		return func(regs []uint64, fr *frame) uint64 {
			return math.Float64bits(math.Float64frombits(l(regs, fr)) * math.Float64frombits(r(regs, fr)))
		}
	default:
		return func(regs []uint64, fr *frame) uint64 {
			return math.Float64bits(math.Float64frombits(l(regs, fr)) / math.Float64frombits(r(regs, fr)))
		}
	}
}

// rootOf builds the closure computing v directly into its register slot,
// folding the store-to-slot into the hot nodes so a materialized value
// costs one call instead of wrapper-plus-node.
func (bc *bcompiler) rootOf(s int32, v *ir.Value) opFn {
	switch v.Op {
	case ir.OpLoad:
		return bc.loadRoot(s, v)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		l, r := bc.opnd(v.Args[0]), bc.opnd(v.Args[1])
		if l.kind == oReg && r.kind == oReg {
			ls, rs := l.slot, r.slot
			switch v.Op {
			case ir.OpAdd:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] + regs[rs] }
			case ir.OpSub:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] - regs[rs] }
			case ir.OpMul:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] * regs[rs] }
			case ir.OpAnd:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] & regs[rs] }
			case ir.OpOr:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] | regs[rs] }
			default:
				return func(regs []uint64, fr *frame) { regs[s] = regs[ls] ^ regs[rs] }
			}
		}
		if l.kind == oReg && r.kind == oImm && v.Op == ir.OpAdd {
			ls, c := l.slot, r.imm
			return func(regs []uint64, fr *frame) { regs[s] = regs[ls] + c }
		}
		e := bc.binI64(v.Op, v)
		return func(regs []uint64, fr *frame) { regs[s] = e(regs, fr) }
	case ir.OpICmp:
		e := bc.icmpNode(v)
		return func(regs []uint64, fr *frame) { regs[s] = e(regs, fr) }
	default:
		// Build the computation itself — bc.val would return the register
		// read for a materialized value (self-reference).
		e := bc.buildExpr(v)
		return func(regs []uint64, fr *frame) { regs[s] = e(regs, fr) }
	}
}

// loadRoot is loadNode with the destination folded in.
func (bc *bcompiler) loadRoot(s int32, v *ir.Value) opFn {
	am := bc.addr(v.Args[0])
	w := v.Type.Width()
	if am.ok && am.baseIsImm && !am.idxIsImm {
		base := am.baseImm + am.disp
		is := am.idxSlot
		scale := am.scale
		switch w {
		case 8:
			switch scale {
			case 8:
				return func(regs []uint64, fr *frame) {
					regs[s] = binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*8))
				}
			case 16:
				return func(regs []uint64, fr *frame) {
					regs[s] = binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*16))
				}
			default:
				return func(regs []uint64, fr *frame) {
					regs[s] = binary.LittleEndian.Uint64(fr.mem.Seg(base + regs[is]*scale))
				}
			}
		case 1:
			return func(regs []uint64, fr *frame) {
				regs[s] = uint64(fr.mem.Seg(base + regs[is]*scale)[0])
			}
		}
	}
	af := am.resolve(bc)
	switch w {
	case 1:
		return func(regs []uint64, fr *frame) { regs[s] = uint64(fr.mem.Seg(af(regs, fr))[0]) }
	case 2:
		return func(regs []uint64, fr *frame) {
			regs[s] = uint64(binary.LittleEndian.Uint16(fr.mem.Seg(af(regs, fr))))
		}
	case 4:
		return func(regs []uint64, fr *frame) {
			regs[s] = uint64(binary.LittleEndian.Uint32(fr.mem.Seg(af(regs, fr))))
		}
	default:
		return func(regs []uint64, fr *frame) {
			regs[s] = binary.LittleEndian.Uint64(fr.mem.Seg(af(regs, fr)))
		}
	}
}
