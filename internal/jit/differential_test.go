package jit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aqe/internal/ir"
	"aqe/internal/ir/interp"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// genFunc builds a random but well-formed function:
//
//	f(p0, p1, base):
//	  loop 7 times: a body of random arithmetic, comparisons, selects,
//	  float round-trips and loads/stores against a scratch segment,
//	  threading an accumulator through φ-nodes;
//	  then an overflow-checked add of the accumulator (the fusable
//	  pattern) returning a sentinel on overflow.
//
// Every execution engine must produce identical results, memory effects
// and traps for these functions; the differential tests below compare the
// IR interpreter, the bytecode VM under every allocation strategy, and
// both JIT tiers.
func genFunc(rng *rand.Rand, nbody int) *ir.Function {
	m := ir.NewModule("diff")
	f := m.NewFunc("f", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	iters := b.ConstI64(int64(3 + rng.Intn(6)))
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.I64)
	acc := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, iters)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	pool := []*ir.Value{f.Params[0], f.Params[1], i, acc,
		b.ConstI64(rng.Int63()), b.ConstI64(int64(rng.Intn(97) - 48))}
	pick := func() *ir.Value { return pool[rng.Intn(len(pool))] }
	push := func(v *ir.Value) { pool = append(pool, v) }
	base := f.Params[2]
	addr := func() *ir.Value {
		slot := b.And(pick(), b.ConstI64(31))
		return b.GEP(base, slot, 8, 0)
	}
	for k := 0; k < nbody; k++ {
		switch rng.Intn(14) {
		case 0:
			push(b.Add(pick(), pick()))
		case 1:
			push(b.Sub(pick(), pick()))
		case 2:
			push(b.Mul(pick(), pick()))
		case 3:
			push(b.Xor(pick(), pick()))
		case 4:
			push(b.And(pick(), pick()))
		case 5:
			push(b.Or(pick(), pick()))
		case 6:
			sh := b.And(pick(), b.ConstI64(63))
			push(b.LShr(pick(), sh))
		case 7:
			c := b.ICmp(ir.Pred(rng.Intn(10)), pick(), pick())
			push(b.Select(c, pick(), pick()))
		case 8:
			c := b.ICmp(ir.Pred(rng.Intn(6)), pick(), pick())
			push(b.ZExt(c, ir.I64))
		case 9:
			// Unsigned division with a nonzero divisor.
			d := b.Or(pick(), one)
			push(b.UDiv(pick(), d))
		case 10:
			// Signed division with a small positive divisor.
			d := b.Or(b.And(pick(), b.ConstI64(255)), one)
			push(b.SDiv(pick(), d))
		case 11:
			b.Store(addr(), pick())
		case 12:
			push(b.Load(ir.I64, addr()))
		case 13:
			// Float round-trip.
			x := b.SIToFP(b.And(pick(), b.ConstI64(0xFFFFF)))
			y := b.SIToFP(b.Or(b.And(pick(), b.ConstI64(0xFF)), one))
			push(b.FPToSI(b.FDiv(b.FAdd(x, y), y)))
		}
	}
	// Fold the newest values into the accumulator.
	acc2 := acc
	for _, v := range pool[len(pool)-3:] {
		acc2 = b.Xor(acc2, v)
	}
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(acc, f.Params[0], entry)
	ir.AddIncoming(acc, acc2, body)

	b.SetBlock(exit)
	ovfB := f.NewBlock()
	contB := f.NewBlock()
	pair := b.SAddOvf(acc, f.Params[1])
	v := b.ExtractValue(pair, 0)
	fl := b.ExtractValue(pair, 1)
	b.CondBr(fl, ovfB, contB)
	b.SetBlock(ovfB)
	b.Ret(b.ConstI64(0x0DEAD))
	b.SetBlock(contB)
	b.Ret(v)
	return f
}

type engine struct {
	name string
	run  func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error)
}

func engines(t *testing.T) []engine {
	t.Helper()
	mkVM := func(opts vm.Options) func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error) {
		return func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error) {
			p, err := vm.Translate(f, opts)
			if err != nil {
				return 0, err
			}
			return p.Run(ctx, args), nil
		}
	}
	return []engine{
		{"ir-interp", func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error) {
			return interp.Run(f, ctx, args), nil
		}},
		{"vm-loopaware", mkVM(vm.Options{Strategy: vm.LoopAware})},
		{"vm-noreuse", mkVM(vm.Options{Strategy: vm.NoReuse})},
		{"vm-window", mkVM(vm.Options{Strategy: vm.Window, WindowSize: 2})},
		{"vm-nofusion", mkVM(vm.Options{NoFusion: true})},
		{"jit-unopt", func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error) {
			c, err := Compile(f, Unoptimized, nil)
			if err != nil {
				return 0, err
			}
			return c.Run(ctx, args), nil
		}},
		{"jit-opt", func(f *ir.Function, ctx *rt.Ctx, args []uint64) (uint64, error) {
			c, err := Compile(f, Optimized, nil)
			if err != nil {
				return 0, err
			}
			return c.Run(ctx, args), nil
		}},
	}
}

// runEngine executes one engine on a fresh memory image and returns the
// result plus the final scratch segment contents.
func runEngine(t *testing.T, e engine, f *ir.Function, args [2]uint64) (uint64, []byte) {
	t.Helper()
	mem := rt.NewMemory()
	scratch := make([]byte, 32*8)
	base := mem.AddSegment(scratch)
	ctx := &rt.Ctx{Mem: mem}
	res, err := e.run(f, ctx, []uint64{args[0], args[1], base})
	if err != nil {
		t.Fatalf("%s: %v", e.name, err)
	}
	return res, scratch
}

func TestDifferentialRandomPrograms(t *testing.T) {
	engs := engines(t)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := genFunc(rng, 20+rng.Intn(40))
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: generated function invalid: %v", seed, err)
		}
		args := [2]uint64{rng.Uint64(), rng.Uint64()}
		wantRes, wantMem := runEngine(t, engs[0], f, args)
		for _, e := range engs[1:] {
			// Clone per engine: translation may split critical edges and
			// the optimizing tier must not see a pre-mutated function.
			g := f.Clone()
			res, mem := runEngine(t, e, g, args)
			if res != wantRes {
				t.Errorf("seed %d: %s result %#x, want %#x (ir-interp)", seed, e.name, res, wantRes)
			}
			if string(mem) != string(wantMem) {
				t.Errorf("seed %d: %s memory image diverges", seed, e.name)
			}
		}
	}
}

// TestDifferentialQuick drives a few fixed programs with quick-generated
// argument values.
func TestDifferentialQuick(t *testing.T) {
	engs := engines(t)
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := genFunc(rng, 30)
		check := func(a, b uint64) bool {
			wantRes, wantMem := runEngine(t, engs[0], f, [2]uint64{a, b})
			for _, e := range engs[1:] {
				res, mem := runEngine(t, e, f.Clone(), [2]uint64{a, b})
				if res != wantRes || string(mem) != string(wantMem) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestJITLoopSum(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("loopsum", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero, one := b.ConstI64(0), b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	s2 := b.Add(s, i)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, zero, entry)
	ir.AddIncoming(s, s2, body)
	b.SetBlock(exit)
	b.Ret(s)

	for _, level := range []Level{Unoptimized, Optimized} {
		c, err := Compile(f.Clone(), level, nil)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		ctx := &rt.Ctx{Mem: rt.NewMemory()}
		if got := c.Run(ctx, []uint64{100}); got != 4950 {
			t.Errorf("%v: loopsum(100) = %d, want 4950", level, got)
		}
	}
}

func TestJITTrapSemantics(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("div", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.SDiv(f.Params[0], f.Params[1]))
	for _, level := range []Level{Unoptimized, Optimized} {
		c, err := Compile(f.Clone(), level, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &rt.Ctx{Mem: rt.NewMemory()}
		if got := c.Run(ctx, []uint64{84, 2}); got != 42 {
			t.Errorf("%v: div = %d", level, got)
		}
		err = rt.CatchTrap(func() {
			ctx.ResetRegs()
			c.Run(ctx, []uint64{84, 0})
		})
		if trap, ok := err.(*rt.Trap); !ok || trap.Code != rt.TrapDivZero {
			t.Errorf("%v: expected div-zero trap, got %v", level, err)
		}
	}
}

func TestOptimizedTierRunsPasses(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("redundant", ir.I64)
	b := ir.NewBuilder(f)
	// Redundant subexpressions and a constant chain the pipeline folds.
	x := b.Add(f.Params[0], b.ConstI64(2))
	y := b.Add(f.Params[0], b.ConstI64(2)) // CSE target
	z := b.Mul(b.ConstI64(3), b.ConstI64(4))
	b.Ret(b.Add(b.Add(x, y), z))
	c, err := Compile(f, Optimized, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Passes.CSE == 0 && c.Stats.Passes.Folded == 0 {
		t.Errorf("pass pipeline reported no work: %+v", c.Stats.Passes)
	}
	ctx := &rt.Ctx{Mem: rt.NewMemory()}
	if got := c.Run(ctx, []uint64{10}); got != 36 {
		t.Errorf("redundant(10) = %d, want 36", got)
	}
}

func TestCompileStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := genFunc(rng, 40)
	unopt, err := Compile(f.Clone(), Unoptimized, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(f.Clone(), Optimized, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unopt.Stats.Closures == 0 || opt.Stats.Closures == 0 {
		t.Error("closure counts missing")
	}
	if unopt.Level != Unoptimized || opt.Level != Optimized {
		t.Error("level not recorded")
	}
}
