package jit

import (
	"fmt"
	"math"

	"aqe/internal/ir"
	"aqe/internal/ir/passes"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// The closure backend compiles IR by value threading: each SSA value
// becomes a closure; pure single-use values are inlined into their
// consumer's closure so expression trees execute as one nested call chain
// without intermediate register traffic. Fusions mirror what an
// instruction selector does on real hardware:
//
//   - the overflow-check group (ovf-op, extractvalue 0/1, condbr to a trap
//     block) becomes a single throwing value node;
//   - a terminator's condition tree is evaluated inside the branch closure
//     (before the φ-moves, which the same closure performs);
//   - in the optimized tier, a single-use load is inlined into its
//     consumer when no store or call intervenes.
//
// The unoptimized tier runs the same backend without the IR pass pipeline
// and without load inlining — the closure analogue of fast instruction
// selection. The optimized tier clones the function and runs the full
// pass pipeline first.
func compileClosures(f *ir.Function, level Level) (*Compiled, error) {
	g := f
	var pstats passes.Stats
	if level == Optimized {
		g = f.Clone()
		pstats = passes.Optimize(g)
	}
	g.SplitCriticalEdges()
	if err := g.Verify(); err != nil {
		return nil, fmt.Errorf("jit: compile %s: %w", g.Name, err)
	}
	bc := &bcompiler{
		f:          g,
		inlineLoad: level == Optimized,
		mat:        make(map[*ir.Value]bool),
		slot:       make(map[*ir.Value]int32),
		memo:       make(map[*ir.Value]valFn),
		checked:    make(map[*ir.Value]*ir.Value),
		skip:       make(map[*ir.Value]bool),
		termJump:   make(map[*ir.Block]*ir.Block),
	}
	c, err := bc.compile()
	if err != nil {
		return nil, err
	}
	c.Stats.Passes = pstats
	c.Stats.IRInstrs = g.NumInstrs()
	return c, nil
}

type valFn func(regs []uint64, fr *frame) uint64
type opFn func(regs []uint64, fr *frame)
type termFn func(regs []uint64, fr *frame) int

type cblock struct {
	ops  []opFn
	term termFn
}

type bcompiler struct {
	f          *ir.Function
	inlineLoad bool

	mat  map[*ir.Value]bool
	slot map[*ir.Value]int32
	memo map[*ir.Value]valFn

	// checked maps the extract0 of a fused overflow group to its ovf op;
	// skip marks group members that emit nothing; termJump overrides a
	// block's CondBr with a direct jump after fusion.
	checked  map[*ir.Value]*ir.Value
	skip     map[*ir.Value]bool
	termJump map[*ir.Block]*ir.Block

	// inlined loads (optimized tier only).
	inlinedLoads map[*ir.Value]bool

	next     int32
	scratch  int32
	closures int
	blockIdx map[*ir.Block]int
}

// pureB reports whether the value can be inlined into a consumer: no side
// effects, no traps, no memory reads.
func pureB(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpICmp, ir.OpFCmp,
		ir.OpSExt, ir.OpZExt, ir.OpTrunc, ir.OpSIToFP, ir.OpFPToSI,
		ir.OpGEP, ir.OpSelect, ir.OpExtractValue:
		return true
	}
	return false
}

// isTrapBlock recognizes the overflow-handler shape codegen emits: no φs,
// a single call to a trapping extern, ret void.
func (bc *bcompiler) isTrapBlock(b *ir.Block) bool {
	if len(b.Instrs) != 1 || b.Term.Op != ir.OpRetVoid {
		return false
	}
	call := b.Instrs[0]
	if call.Op != ir.OpCall {
		return false
	}
	name := bc.f.Module.Externs[call.Callee].Name
	return name == "trap_overflow" || name == "trap_divzero"
}

// planChecked finds overflow groups whose failure edge leads to a trap
// block and rewrites them into throwing value nodes.
func (bc *bcompiler) planChecked(useCount map[*ir.Value]int) {
	for _, b := range bc.f.Blocks {
		t := b.Term
		if t.Op != ir.OpCondBr {
			continue
		}
		cond := t.Args[0]
		if !cond.IsInstr() || cond.Op != ir.OpExtractValue || cond.Lit != 1 ||
			cond.Block != b || useCount[cond] != 1 {
			continue
		}
		pair := cond.Args[0]
		if pair.Block != b || pair.Type != ir.Pair {
			continue
		}
		switch pair.Op {
		case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
		default:
			continue
		}
		var trapTarget, contTarget *ir.Block
		if bc.isTrapBlock(t.Targets[0]) {
			trapTarget, contTarget = t.Targets[0], t.Targets[1]
		} else if bc.isTrapBlock(t.Targets[1]) {
			trapTarget, contTarget = t.Targets[1], t.Targets[0]
		} else {
			continue
		}
		if len(trapTarget.Phis()) > 0 || len(contTarget.Phis()) > 0 {
			// φ-moves on the edge would be lost; keep the general path.
			continue
		}
		// Locate extract0; the pair may be consumed only by its extracts.
		var result *ir.Value
		ok := true
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == pair && in != cond {
					if in.Op == ir.OpExtractValue && in.Lit == 0 {
						result = in
					} else {
						ok = false
					}
				}
			}
		}
		if !ok || result == nil || useCount[pair] > 2 {
			continue
		}
		bc.checked[result] = pair
		bc.skip[pair] = true
		bc.skip[cond] = true
		bc.termJump[b] = contTarget
	}
}

func (bc *bcompiler) compile() (*Compiled, error) {
	f := bc.f

	for _, p := range f.Params {
		bc.slot[p] = bc.next
		bc.next++
	}

	// Use accounting.
	useCount := make(map[*ir.Value]int)
	countUses := func(u *ir.Value) {
		for _, a := range u.Args {
			if a.IsInstr() {
				useCount[a]++
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			countUses(in)
		}
		countUses(b.Term)
	}
	bc.planChecked(useCount)
	if bc.inlineLoad {
		bc.planLoadInlining(useCount)
	}

	// Materialization analysis. A value needs a register slot when it is
	// used more than once, used outside its defining block, used by a
	// φ-move, or is a non-pure root that is not otherwise fused away.
	// Terminator conditions and return values are inlined into the
	// terminator closure when they are single-use pure trees.
	seenUse := make(map[*ir.Value]bool)
	use := func(u *ir.Value, a *ir.Value, forceMat bool) {
		if !a.IsInstr() || bc.skip[a] {
			return
		}
		if seenUse[a] || forceMat || u.Block != a.Block {
			bc.mat[a] = true
		}
		seenUse[a] = true
	}
	inlinable := func(v *ir.Value) bool {
		if bc.checked[v] != nil || bc.inlinedLoads[v] {
			return true
		}
		return pureB(v.Op)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if bc.skip[in] {
				continue
			}
			if in.Type != ir.Void && in.Op != ir.OpPhi && !inlinable(in) {
				bc.mat[in] = true
			}
			if in.Op == ir.OpPhi {
				bc.mat[in] = true
				for _, a := range in.Args {
					use(in, a, true) // φ-moves read registers
				}
				continue
			}
			for _, a := range in.Args {
				use(in, a, false)
			}
		}
		// Terminator operands: inline single-use pure trees.
		for _, a := range b.Term.Args {
			use(b.Term, a, false)
		}
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !bc.mat[in] || bc.skip[in] {
				continue
			}
			bc.slot[in] = bc.next
			if in.Type == ir.Pair {
				bc.next += 2
			} else {
				bc.next++
			}
		}
	}
	bc.scratch = bc.next
	bc.next++

	bc.blockIdx = make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		bc.blockIdx[b] = i
	}
	blocks := make([]cblock, len(f.Blocks))
	for i, b := range f.Blocks {
		cb := &blocks[i]
		for _, in := range b.Instrs {
			if op := bc.emitInstr(in); op != nil {
				cb.ops = append(cb.ops, op)
			}
		}
		cb.term = bc.emitTerm(b)
	}
	bc.mergeBlocks(blocks)

	// Fuse every block into a single closure: small blocks (filter exits,
	// key-compare chains) would otherwise pay slice setup plus a separate
	// terminator dispatch on every visit.
	fns := make([]func(regs []uint64, fr *frame) int, len(blocks))
	for i := range blocks {
		fns[i] = fuseBlock(blocks[i].ops, blocks[i].term)
	}
	c := &Compiled{
		Name:      f.Name,
		numRegs:   int(bc.next),
		paramBase: 0,
	}
	c.Stats.Closures = bc.closures
	c.run = func(fr *frame) {
		regs := fr.regs
		bi := 0
		for bi >= 0 {
			bi = fns[bi](regs, fr)
		}
	}
	return c, nil
}

// fuseBlock composes a block's root closures and terminator into one
// closure, specialized for the common small block sizes.
func fuseBlock(ops []opFn, term termFn) func(regs []uint64, fr *frame) int {
	switch len(ops) {
	case 0:
		return term
	case 1:
		o0 := ops[0]
		return func(regs []uint64, fr *frame) int {
			o0(regs, fr)
			return term(regs, fr)
		}
	case 2:
		o0, o1 := ops[0], ops[1]
		return func(regs []uint64, fr *frame) int {
			o0(regs, fr)
			o1(regs, fr)
			return term(regs, fr)
		}
	case 3:
		o0, o1, o2 := ops[0], ops[1], ops[2]
		return func(regs []uint64, fr *frame) int {
			o0(regs, fr)
			o1(regs, fr)
			o2(regs, fr)
			return term(regs, fr)
		}
	case 4:
		o0, o1, o2, o3 := ops[0], ops[1], ops[2], ops[3]
		return func(regs []uint64, fr *frame) int {
			o0(regs, fr)
			o1(regs, fr)
			o2(regs, fr)
			o3(regs, fr)
			return term(regs, fr)
		}
	default:
		return func(regs []uint64, fr *frame) int {
			for _, op := range ops {
				op(regs, fr)
			}
			return term(regs, fr)
		}
	}
}

// planLoadInlining marks single-use loads that may evaluate at their
// consumer's position: the consumer chain up to its materialized root must
// cross no store or call (memory barrier).
func (bc *bcompiler) planLoadInlining(useCount map[*ir.Value]int) {
	bc.inlinedLoads = make(map[*ir.Value]bool)
	for _, b := range bc.f.Blocks {
		pos := make(map[*ir.Value]int, len(b.Instrs))
		barriers := make([]int, len(b.Instrs)+1) // prefix count
		consumer := make(map[*ir.Value]*ir.Value)
		for i, in := range b.Instrs {
			pos[in] = i
			barriers[i+1] = barriers[i]
			if in.Op == ir.OpStore || in.Op == ir.OpCall {
				barriers[i+1]++
			}
			for _, a := range in.Args {
				consumer[a] = in
			}
		}
		// evalPos: where a non-materialized value actually evaluates.
		var evalPos func(v *ir.Value) int
		evalPos = func(v *ir.Value) int {
			c, ok := consumer[v]
			if !ok || c.Block != b {
				return len(b.Instrs) // consumed by the terminator
			}
			if bc.mat[c] || !pureB(c.Op) {
				return pos[c]
			}
			return evalPos(c)
		}
		for i, in := range b.Instrs {
			if in.Op != ir.OpLoad || useCount[in] != 1 {
				continue
			}
			c, ok := consumer[in]
			if !ok || c.Block != b {
				continue
			}
			ep := evalPos(in)
			if barriers[minInt(ep, len(b.Instrs))] == barriers[i+1] {
				bc.inlinedLoads[in] = true
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// val returns the evaluation closure for v.
func (bc *bcompiler) val(v *ir.Value) valFn {
	if fn, ok := bc.memo[v]; ok {
		return fn
	}
	var fn valFn
	switch {
	case v.IsConst():
		c := v.Const
		fn = func(regs []uint64, fr *frame) uint64 { return c }
	case v.Op == ir.OpParam || bc.mat[v]:
		// Materialized values read their register; a materialized fused
		// overflow result is written once by its root closure.
		s := bc.slotOf(v)
		fn = func(regs []uint64, fr *frame) uint64 { return regs[s] }
	case bc.checked[v] != nil:
		fn = bc.buildChecked(bc.checked[v])
	case bc.inlinedLoads != nil && bc.inlinedLoads[v]:
		fn = bc.buildLoad(v)
	default:
		fn = bc.buildExpr(v)
	}
	bc.memo[v] = fn
	bc.closures++
	return fn
}

// buildChecked compiles a fused overflow group into a throwing value node:
// the branch to the trap block becomes a panic on overflow, which is
// exactly what the trap extern does.
func (bc *bcompiler) buildChecked(pair *ir.Value) valFn {
	return bc.checkedNode(pair)
}

// buildLoad compiles a load as a value node with the address computation
// fused in (shape-specialized).
func (bc *bcompiler) buildLoad(v *ir.Value) valFn {
	return bc.loadNode(v)
}

// buildExpr composes the closure computing a pure instruction.
func (bc *bcompiler) buildExpr(v *ir.Value) valFn {
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		return bc.binI64(v.Op, v)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return bc.fbinNode(v.Op, v)
	case ir.OpShl:
		l, r := bc.val(v.Args[0]), bc.val(v.Args[1])
		return func(regs []uint64, fr *frame) uint64 { return l(regs, fr) << (r(regs, fr) & 63) }
	case ir.OpLShr:
		l, r := bc.val(v.Args[0]), bc.val(v.Args[1])
		return func(regs []uint64, fr *frame) uint64 { return l(regs, fr) >> (r(regs, fr) & 63) }
	case ir.OpAShr:
		l, r := bc.val(v.Args[0]), bc.val(v.Args[1])
		return func(regs []uint64, fr *frame) uint64 {
			return uint64(int64(l(regs, fr)) >> (r(regs, fr) & 63))
		}
	case ir.OpICmp:
		return bc.icmpNode(v)
	case ir.OpFCmp:
		return bc.buildFCmp(v)
	case ir.OpSExt:
		x := bc.val(v.Args[0])
		switch v.Args[0].Type {
		case ir.I1, ir.I8:
			return func(regs []uint64, fr *frame) uint64 { return uint64(int64(int8(x(regs, fr)))) }
		case ir.I16:
			return func(regs []uint64, fr *frame) uint64 { return uint64(int64(int16(x(regs, fr)))) }
		case ir.I32:
			return func(regs []uint64, fr *frame) uint64 { return uint64(int64(int32(x(regs, fr)))) }
		}
		return x
	case ir.OpZExt:
		return bc.val(v.Args[0])
	case ir.OpTrunc:
		x := bc.val(v.Args[0])
		switch v.Type {
		case ir.I1, ir.I8:
			return func(regs []uint64, fr *frame) uint64 { return x(regs, fr) & 0xff }
		case ir.I16:
			return func(regs []uint64, fr *frame) uint64 { return x(regs, fr) & 0xffff }
		case ir.I32:
			return func(regs []uint64, fr *frame) uint64 { return x(regs, fr) & 0xffffffff }
		}
		return x
	case ir.OpSIToFP:
		x := bc.val(v.Args[0])
		return func(regs []uint64, fr *frame) uint64 {
			return math.Float64bits(float64(int64(x(regs, fr))))
		}
	case ir.OpFPToSI:
		x := bc.val(v.Args[0])
		return func(regs []uint64, fr *frame) uint64 {
			return uint64(int64(math.Float64frombits(x(regs, fr))))
		}
	case ir.OpGEP:
		b, i := bc.opnd(v.Args[0]), bc.opnd(v.Args[1])
		scale, disp := v.Lit, uint64(int64(v.Lit2))
		switch {
		case b.kind == oReg && i.kind == oReg:
			bs, is := b.slot, i.slot
			return func(regs []uint64, fr *frame) uint64 {
				return regs[bs] + regs[is]*scale + disp
			}
		case b.kind == oReg && i.kind == oImm:
			bs := b.slot
			off := i.imm*scale + disp
			return func(regs []uint64, fr *frame) uint64 { return regs[bs] + off }
		case b.kind == oImm && i.kind == oReg:
			base := b.imm + disp
			is := i.slot
			return func(regs []uint64, fr *frame) uint64 { return base + regs[is]*scale }
		default:
			base, idx := bc.fnOf(b), bc.fnOf(i)
			return func(regs []uint64, fr *frame) uint64 {
				return base(regs, fr) + idx(regs, fr)*scale + disp
			}
		}
	case ir.OpSelect:
		c, x, y := bc.val(v.Args[0]), bc.val(v.Args[1]), bc.val(v.Args[2])
		return func(regs []uint64, fr *frame) uint64 {
			if c(regs, fr) != 0 {
				return x(regs, fr)
			}
			return y(regs, fr)
		}
	case ir.OpExtractValue:
		s := bc.slotOf(v.Args[0]) + int32(v.Lit)
		return func(regs []uint64, fr *frame) uint64 { return regs[s] }
	}
	panic(fmt.Sprintf("jit: buildExpr on %s", v.Op))
}

func (bc *bcompiler) buildFCmp(v *ir.Value) valFn {
	l, r := bc.val(v.Args[0]), bc.val(v.Args[1])
	pred := v.Pred
	return func(regs []uint64, fr *frame) uint64 {
		x, y := math.Float64frombits(l(regs, fr)), math.Float64frombits(r(regs, fr))
		var res bool
		switch pred {
		case ir.Eq:
			res = x == y
		case ir.Ne:
			res = x != y
		case ir.SLt:
			res = x < y
		case ir.SLe:
			res = x <= y
		case ir.SGt:
			res = x > y
		default:
			res = x >= y
		}
		return b2u(res)
	}
}

// emitInstr emits the root closure for an instruction, or nil when the
// value is inlined into consumers or fused away.
func (bc *bcompiler) emitInstr(in *ir.Value) opFn {
	if bc.skip[in] || in.Op == ir.OpPhi {
		return nil
	}
	if bc.checked[in] != nil {
		// Fused overflow result: materialize only if required.
		if !bc.mat[in] {
			return nil
		}
		e := bc.buildChecked(bc.checked[in])
		s := bc.slotOf(in)
		bc.closures++
		return func(regs []uint64, fr *frame) { regs[s] = e(regs, fr) }
	}
	bc.closures++
	switch in.Op {
	case ir.OpLoad:
		if bc.inlinedLoads != nil && bc.inlinedLoads[in] {
			bc.closures--
			return nil
		}
		return bc.rootOf(bc.slotOf(in), in)
	case ir.OpStore:
		return bc.storeNode(in)
	case ir.OpCall:
		argFns := make([]valFn, len(in.Args))
		for i, a := range in.Args {
			argFns[i] = bc.val(a)
		}
		idx := in.Callee
		n := len(in.Args)
		if in.Type == ir.Void {
			return func(regs []uint64, fr *frame) {
				for i, af := range argFns {
					fr.ctx.Args[i] = af(regs, fr)
				}
				fr.ctx.Funcs[idx](fr.ctx, fr.ctx.Args[:n])
			}
		}
		s := bc.slotOf(in)
		return func(regs []uint64, fr *frame) {
			for i, af := range argFns {
				fr.ctx.Args[i] = af(regs, fr)
			}
			regs[s] = fr.ctx.Funcs[idx](fr.ctx, fr.ctx.Args[:n])
		}
	case ir.OpSDiv:
		l, r := bc.val(in.Args[0]), bc.val(in.Args[1])
		s := bc.slotOf(in)
		return func(regs []uint64, fr *frame) {
			d := int64(r(regs, fr))
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			n := int64(l(regs, fr))
			if n == math.MinInt64 && d == -1 {
				rt.Throw(rt.TrapOverflow)
			}
			regs[s] = uint64(n / d)
		}
	case ir.OpSRem:
		l, r := bc.val(in.Args[0]), bc.val(in.Args[1])
		s := bc.slotOf(in)
		return func(regs []uint64, fr *frame) {
			d := int64(r(regs, fr))
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			n := int64(l(regs, fr))
			if n == math.MinInt64 && d == -1 {
				regs[s] = 0
			} else {
				regs[s] = uint64(n % d)
			}
		}
	case ir.OpUDiv:
		l, r := bc.val(in.Args[0]), bc.val(in.Args[1])
		s := bc.slotOf(in)
		return func(regs []uint64, fr *frame) {
			d := r(regs, fr)
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			regs[s] = l(regs, fr) / d
		}
	case ir.OpURem:
		l, r := bc.val(in.Args[0]), bc.val(in.Args[1])
		s := bc.slotOf(in)
		return func(regs []uint64, fr *frame) {
			d := r(regs, fr)
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			regs[s] = l(regs, fr) % d
		}
	case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
		l, r := bc.val(in.Args[0]), bc.val(in.Args[1])
		s := bc.slotOf(in)
		var core func(x, y int64) (int64, bool)
		switch in.Op {
		case ir.OpSAddOvf:
			core = vm.AddOverflow
		case ir.OpSSubOvf:
			core = vm.SubOverflow
		default:
			core = vm.MulOverflow
		}
		return func(regs []uint64, fr *frame) {
			v, o := core(int64(l(regs, fr)), int64(r(regs, fr)))
			regs[s], regs[s+1] = uint64(v), b2u(o)
		}
	default:
		if !pureB(in.Op) {
			panic(fmt.Sprintf("jit: unexpected instruction %s", in.Op))
		}
		if !bc.mat[in] {
			bc.closures--
			return nil // inlined into consumers
		}
		return bc.rootOf(bc.slotOf(in), in)
	}
}

// pmove is one φ-move (src < 0: immediate).
type pmove struct {
	dst, src int32
	imm      uint64
}

// phiMoves computes the sequentialized parallel copy for the edge b -> its
// successors' φ-nodes.
func (bc *bcompiler) phiMoves(b *ir.Block) []pmove {
	var moves []pmove
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			for i, in := range phi.Incoming {
				if in != b {
					continue
				}
				dst := bc.slotOf(phi)
				a := phi.Args[i]
				if a.IsConst() {
					moves = append(moves, pmove{dst: dst, src: -1, imm: a.Const})
				} else if src := bc.slotOf(a); src != dst {
					moves = append(moves, pmove{dst: dst, src: src})
				}
			}
		}
	}
	// Sequentialize with the scratch slot on cycles.
	var out []pmove
	for len(moves) > 0 {
		progress := false
		for i := 0; i < len(moves); i++ {
			m := moves[i]
			blocked := false
			for j, o := range moves {
				if j != i && o.src == m.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			out = append(out, m)
			moves = append(moves[:i], moves[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			d := moves[0].dst
			out = append(out, pmove{dst: bc.scratch, src: d})
			for i := range moves {
				if moves[i].src == d {
					moves[i].src = bc.scratch
				}
			}
		}
	}
	return out
}

func runMoves(moves []pmove, regs []uint64) {
	for _, m := range moves {
		if m.src < 0 {
			regs[m.dst] = m.imm
		} else {
			regs[m.dst] = regs[m.src]
		}
	}
}

// emitTerm builds the terminator closure: it evaluates the condition tree
// (before the φ-moves, which it then performs) and returns the next block.
func (bc *bcompiler) emitTerm(b *ir.Block) termFn {
	bc.closures++
	moves := bc.phiMoves(b)
	t := b.Term

	// Fused overflow groups turned this CondBr into a direct jump.
	if tgt, ok := bc.termJump[b]; ok {
		next := bc.blockIdx[tgt]
		if len(moves) == 0 {
			return func(regs []uint64, fr *frame) int { return next }
		}
		return func(regs []uint64, fr *frame) int {
			runMoves(moves, regs)
			return next
		}
	}

	switch t.Op {
	case ir.OpBr:
		next := bc.blockIdx[t.Targets[0]]
		if len(moves) == 0 {
			return func(regs []uint64, fr *frame) int { return next }
		}
		if len(moves) == 1 {
			m := moves[0]
			if m.src >= 0 {
				return func(regs []uint64, fr *frame) int {
					regs[m.dst] = regs[m.src]
					return next
				}
			}
		}
		return func(regs []uint64, fr *frame) int {
			runMoves(moves, regs)
			return next
		}
	case ir.OpCondBr:
		if fused := bc.condBrTerm(b, moves); fused != nil {
			return fused
		}
		then, els := bc.blockIdx[t.Targets[0]], bc.blockIdx[t.Targets[1]]
		cond := bc.val(t.Args[0])
		if len(moves) == 0 {
			return func(regs []uint64, fr *frame) int {
				if cond(regs, fr) != 0 {
					return then
				}
				return els
			}
		}
		return func(regs []uint64, fr *frame) int {
			c := cond(regs, fr)
			runMoves(moves, regs)
			if c != 0 {
				return then
			}
			return els
		}
	case ir.OpRet:
		ret := bc.val(t.Args[0])
		return func(regs []uint64, fr *frame) int {
			fr.ret = ret(regs, fr)
			return -1
		}
	default: // OpRetVoid
		return func(regs []uint64, fr *frame) int {
			fr.ret = 0
			return -1
		}
	}
}

// slotOf returns the register slot of a materialized value, panicking on a
// compiler bug rather than silently reading slot 0.
func (bc *bcompiler) slotOf(v *ir.Value) int32 {
	s, ok := bc.slot[v]
	if !ok {
		panic(fmt.Sprintf("jit: value %%%d (%s) has no slot", v.ID, v.Op))
	}
	return s
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// mergeBlocks splices single-predecessor, φ-free jump targets into their
// predecessor's closure block (checked-arith fusion leaves such chains
// behind), removing a terminator dispatch and a block-loop round per
// tuple. Spliced blocks become unreachable; their cblock entries are
// simply never jumped to.
func (bc *bcompiler) mergeBlocks(blocks []cblock) {
	succOf := func(b *ir.Block) *ir.Block {
		if t, ok := bc.termJump[b]; ok {
			return t
		}
		if b.Term.Op == ir.OpBr {
			return b.Term.Targets[0]
		}
		return nil
	}
	preds := make([]int, len(blocks))
	for _, b := range bc.f.Blocks {
		if t := succOf(b); t != nil {
			preds[bc.blockIdx[t]]++
			continue
		}
		for _, s := range b.Succs() {
			preds[bc.blockIdx[s]]++
		}
	}
	for i, b := range bc.f.Blocks {
		cur := b
		for {
			tgt := succOf(cur)
			if tgt == nil || tgt == b {
				break
			}
			ti := bc.blockIdx[tgt]
			if preds[ti] != 1 || len(tgt.Phis()) > 0 || len(bc.phiMoves(cur)) > 0 {
				break
			}
			blocks[i].ops = append(blocks[i].ops, blocks[ti].ops...)
			blocks[i].term = blocks[ti].term
			cur = tgt
		}
	}
}
