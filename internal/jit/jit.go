// Package jit is the "machine code" stage of the reproduction: it compiles
// IR functions into directly executable Go closures, standing in for
// LLVM's JIT backend (DESIGN.md §1 documents the substitution).
//
// Two tiers mirror the paper's compilation modes (Fig. 3). Both use the
// value-threading closure backend (see bbackend.go):
//
//   - Unoptimized: direct tree compilation with instruction-selection
//     level fusion only (overflow checks, branch conditions) — the
//     analogue of LLVM's fast instruction selection: a cheap linear pass
//     that removes interpretation overhead without optimizing.
//
//   - Optimized: runs the full IR pass pipeline on a clone of the
//     function, then compiles with all fusions including load inlining —
//     the analogue of optimized machine code.
//
// Both tiers execute byte-identical semantics to the bytecode interpreter
// (same register files, same segmented memory, same trap behaviour), which
// is what makes mid-pipeline mode switching safe (§IV-E).
package jit

import (
	"time"

	"aqe/internal/asm"
	"aqe/internal/ir"
	"aqe/internal/ir/passes"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

var _ = vm.Options{} // the vm dependency carries the Program type in Compile's signature

// Level identifies a compilation tier.
type Level int

// Compilation tiers. Native is the copy-and-patch template JIT
// (internal/asm): real machine code, only available where the platform
// has a backend (asm.Supported()).
const (
	Unoptimized Level = iota
	Optimized
	Native
)

func (l Level) String() string {
	switch l {
	case Optimized:
		return "optimized"
	case Native:
		return "native"
	}
	return "unoptimized"
}

// frame is the execution state threaded through compiled closures.
type frame struct {
	regs []uint64
	ctx  *rt.Ctx
	mem  *rt.Memory
	ret  uint64
}

// Compiled is an executable compiled function.
type Compiled struct {
	Name  string
	Level Level

	numRegs   int
	constPool []uint64
	paramBase int
	run       func(fr *frame)
	native    *asm.Code // set instead of run for the Native tier

	Stats Stats
}

// Stats describes one compilation.
type Stats struct {
	// IRInstrs is the instruction count of the compiled form (after
	// passes, for the optimized tier).
	IRInstrs int
	// Closures is the number of closures generated.
	Closures int
	// Passes summarizes the optimization pipeline (optimized tier only).
	Passes passes.Stats
	// CompileTime is the measured wall-clock translation time (excluding
	// any simulated cost-model latency, which the engine adds).
	CompileTime time.Duration
}

// NumRegs returns the register-file size in slots.
func (c *Compiled) NumRegs() int { return c.numRegs }

// closureBytes estimates the retained footprint of one generated closure
// (the closure header plus captured values); cache accounting only needs
// the order of magnitude.
const closureBytes = 80

// SizeBytes estimates the retained in-memory footprint of the compiled
// function for compilation-cache byte budgeting.
func (c *Compiled) SizeBytes() int {
	n := 96 + len(c.Name) + len(c.constPool)*8 + c.Stats.Closures*closureBytes
	if c.native != nil {
		n += c.native.SizeBytes()
	}
	return n
}

// Run executes the compiled function. It is safe for concurrent use with
// distinct contexts: all mutable state lives in the frame and the context.
func (c *Compiled) Run(ctx *rt.Ctx, args []uint64) uint64 {
	if c.native != nil {
		return c.native.Run(ctx, args)
	}
	regs := ctx.PushRegs(c.numRegs)
	copy(regs, c.constPool)
	copy(regs[c.paramBase:], args)
	fr := frame{regs: regs, ctx: ctx, mem: ctx.Mem}
	c.run(&fr)
	ctx.PopRegs()
	return fr.ret
}

// Options selects backend variants below the tier level. The zero value
// is the default configuration.
type Options struct {
	// NoRegAlloc forces the native tier's slot-per-op template backend
	// (asm.Options.NoRegAlloc); the closure tiers ignore it.
	NoRegAlloc bool
}

// Compile compiles f at the given tier with default options. The prog
// parameter is accepted for callers that already hold the bytecode
// translation; the closure backend compiles from the IR directly, so it
// may be nil.
//
// The Native tier assembles machine code via internal/asm; it fails with
// an error wrapping asm.ErrUnsupported on platforms without a backend or
// for functions using ops outside the template set, and callers fall back
// to a closure tier.
func Compile(f *ir.Function, level Level, prog *vm.Program) (*Compiled, error) {
	return CompileOpts(f, level, prog, Options{})
}

// CompileOpts is Compile with explicit backend options.
func CompileOpts(f *ir.Function, level Level, prog *vm.Program, opts Options) (*Compiled, error) {
	_ = prog
	start := time.Now()
	if level == Native {
		code, err := asm.CompileOpts(f, asm.Options{NoRegAlloc: opts.NoRegAlloc})
		if err != nil {
			return nil, err
		}
		c := &Compiled{
			Name:   f.Name,
			Level:  Native,
			native: code,
		}
		c.numRegs = code.NumSlots()
		c.Stats.IRInstrs = f.NumInstrs()
		c.Stats.CompileTime = time.Since(start)
		return c, nil
	}
	c, err := compileClosures(f, level)
	if err != nil {
		return nil, err
	}
	c.Level = level
	c.Stats.CompileTime = time.Since(start)
	return c, nil
}
