package jit

import (
	"testing"

	"aqe/internal/ir"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

func buildSumColFn() *ir.Function {
	m := ir.NewModule("b")
	f := m.NewFunc("sumcol", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero, one := b.ConstI64(0), b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[1])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	v := b.Load(ir.I64, b.GEP(f.Params[0], i, 8, 0))
	v2 := b.Load(ir.I64, b.GEP(f.Params[0], i, 8, 8))
	// checked add pattern like codegen emits
	ovfB := f.NewBlock()
	contB := f.NewBlock()
	pair := b.SAddOvf(v, v2)
	e0 := b.ExtractValue(pair, 0)
	e1 := b.ExtractValue(pair, 1)
	b.CondBr(e1, ovfB, contB)
	b.SetBlock(ovfB)
	b.Call("trap_overflow", ir.Void)
	b.RetVoid()
	b.SetBlock(contB)
	s2 := b.Add(s, e0)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, contB)
	ir.AddIncoming(s, zero, entry)
	ir.AddIncoming(s, s2, contB)
	b.SetBlock(exit)
	b.Ret(s)
	return f
}

func mkCtx() (*rt.Ctx, uint64) {
	mem := rt.NewMemory()
	base := mem.Alloc((100002) * 8)
	for k := 0; k < 100001; k++ {
		mem.Store64(base+uint64(k*8), uint64(k%1000))
	}
	reg := rt.NewRegistry()
	rt.RegisterBuiltins(reg)
	fns, _ := reg.Bind([]string{"trap_overflow"})
	return &rt.Ctx{Mem: mem, Funcs: fns}, base
}

func BenchmarkTierVM(b *testing.B) {
	f := buildSumColFn()
	p, _ := vm.Translate(f, vm.Options{})
	ctx, base := mkCtx()
	args := []uint64{base, 100000}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		p.Run(ctx, args)
	}
}

func BenchmarkTierUnopt(b *testing.B) {
	f := buildSumColFn()
	c, _ := Compile(f, Unoptimized, nil)
	ctx, base := mkCtx()
	args := []uint64{base, 100000}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Run(ctx, args)
	}
}

func BenchmarkTierOpt(b *testing.B) {
	f := buildSumColFn()
	c, _ := Compile(f, Optimized, nil)
	ctx, base := mkCtx()
	args := []uint64{base, 100000}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Run(ctx, args)
	}
}
