// Command aqetrace renders the Fig. 14-style execution trace of one TPC-H
// query under a chosen execution mode.
//
//	aqetrace -q 11 -sf 0.1 -mode adaptive -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"aqe/internal/exec"
	"aqe/internal/opt"
	"aqe/internal/storage"
	"aqe/internal/synth"
	"aqe/internal/tpch"
)

var (
	qn     = flag.Int("q", 11, "TPC-H query number (1-22); 0 with -opt traces the synthetic misestimated star query")
	sf     = flag.Float64("sf", 0.1, "scale factor")
	mode   = flag.String("mode", "adaptive", "bytecode|unoptimized|optimized|native|vector|adaptive")
	wrk    = flag.Int("workers", 4, "worker threads")
	useOpt = flag.Bool("opt", false, "run the cost-based join order with adaptive replanning (queries with a logical form: 3, 5, 10)")
	thresh = flag.Float64("replanthresh", 0, "misestimate factor that triggers a mid-query replan (0 = engine default; <=1 forces a replan check at every breaker)")
)

func main() {
	flag.Parse()
	m := map[string]exec.Mode{
		"bytecode": exec.ModeBytecode, "unoptimized": exec.ModeUnoptimized,
		"optimized": exec.ModeOptimized, "adaptive": exec.ModeAdaptive,
		"native": exec.ModeNative, "vector": exec.ModeVector,
	}[*mode]
	cat := tpch.Gen(*sf)
	eng := exec.New(exec.Options{Workers: *wrk, Mode: m, Cost: exec.Paper(),
		Trace: true, MorselSize: 1024, ReplanThreshold: *thresh})
	var merged *exec.Trace
	if *useOpt {
		var lg *opt.Logical
		if *qn == 0 {
			// The synthetic misestimated star query: the one workload
			// guaranteed to show an 'R' (mid-query replan) on the trace.
			factRows := int(1.6e7 * *sf)
			if factRows < 20000 {
				factRows = 20000
			}
			lg = synth.MisestimateLogical(synth.MisestimateTables(factRows))
		} else {
			var ok bool
			lg, ok = tpch.Logical(cat, *qn)
			if !ok {
				log.Fatalf("Q%d has no logical join-graph form (try 3, 5, 10, or 0 for the synthetic misestimate query)", *qn)
			}
		}
		prep, err := opt.Order(lg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.RunPlanReplan(context.Background(), prep.Root, lg.Name, prep)
		if err != nil {
			log.Fatal(err)
		}
		merged = res.Trace
		fmt.Printf("join order: %v (%d replan(s))\n", prep.OrderNames(), res.Stats.Replans)
	} else {
		q := tpch.Query(cat, *qn)
		prior := map[string]*storage.Table{}
		for i, stg := range q.Stages {
			node := stg.Build(prior)
			res, err := eng.RunPlan(node, stg.Name)
			if err != nil {
				log.Fatal(err)
			}
			if i < len(q.Stages)-1 {
				prior[stg.Name] = res.ToTable(stg.Name)
			}
			if merged == nil {
				merged = res.Trace
			} else {
				merged.Merge(res.Trace)
			}
		}
	}
	if *useOpt && *qn == 0 {
		fmt.Printf("synthetic misestimated star query, SF %g, %s mode, %d workers\n\n", *sf, *mode, *wrk)
	} else {
		fmt.Printf("TPC-H Q%d, SF %g, %s mode, %d workers\n\n", *qn, *sf, *mode, *wrk)
	}
	fmt.Print(merged.Gantt(110))

	// Admission-queue waits ('A' on the compile lane above).
	first := true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvAdmit {
			continue
		}
		if first {
			fmt.Println("\nadmission queue:")
			first = false
		}
		fmt.Printf("  %s: queued %.3f ms before execution\n",
			ev.Label, (ev.End-ev.Start).Seconds()*1e3)
	}

	// Cancellations ('X' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvCancel {
			continue
		}
		if first {
			fmt.Println("\ncancellations:")
			first = false
		}
		fmt.Printf("  %s: cancelled at %.3f ms\n",
			ev.Label, ev.Start.Seconds()*1e3)
	}

	// Zone-map pruning ('Z' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvPrune {
			continue
		}
		if first {
			fmt.Println("\nzone-map pruning:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %d block(s) / %d tuples skipped\n",
			ev.Pipeline, ev.Label, ev.Parts, ev.Tuples)
	}

	// Dictionary-code rewrites ('D' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvDictRewrite {
			continue
		}
		if first {
			fmt.Println("\ndictionary rewrites:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %d string op(s) compiled against codes\n",
			ev.Pipeline, ev.Label, ev.Tuples)
	}

	// Mid-query replans ('R' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvReplan {
			continue
		}
		if first {
			fmt.Println("\nmid-query replans:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): observed %d build tuples at the breaker — replanned at %.3f ms\n",
			ev.Pipeline, ev.Label, ev.Tuples, ev.Start.Seconds()*1e3)
	}

	// Native (tier-6) installs ('N' on the compile lane above) and
	// controller demotions out of native ('V': an EvNative whose installed
	// level is not native records the tier the pipeline fell back to).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvNative {
			continue
		}
		if first {
			fmt.Println("\nnative-code installs:")
			first = false
		}
		scope := fmt.Sprintf("pipeline %d (%s)", ev.Pipeline, ev.Label)
		if ev.Pipeline < 0 {
			scope = "whole module (static mode)"
		}
		if ev.Level != exec.LevelNative {
			fmt.Printf("  %s: demoted out of native to %s code (underperformed prediction)\n",
				scope, ev.Level)
			continue
		}
		fmt.Printf("  %s: machine code assembled in %.3f ms\n",
			scope, (ev.End-ev.Start).Seconds()*1e3)
	}

	// Engine switches ('E' on the compile lane above: a promotion into the
	// vectorized engine; 'e': a demotion back to the recorded compiled tier).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvEngine {
			continue
		}
		if first {
			fmt.Println("\nengine switches:")
			first = false
		}
		if ev.Level == exec.LevelVector {
			fmt.Printf("  pipeline %d (%s): switched to the vectorized engine at %.3f ms\n",
				ev.Pipeline, ev.Label, ev.Start.Seconds()*1e3)
		} else {
			fmt.Printf("  pipeline %d (%s): demoted back to the %s tier at %.3f ms (underperformed prediction)\n",
				ev.Pipeline, ev.Label, ev.Level, ev.Start.Seconds()*1e3)
		}
	}

	// Pipeline-breaker finalizations ('F' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvFinalize {
			continue
		}
		if first {
			fmt.Println("\nbreaker finalizations:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %.3f ms, %d partition(s), %d tuples\n",
			ev.Pipeline, ev.Label, (ev.End-ev.Start).Seconds()*1e3, ev.Parts, ev.Tuples)
	}
}
