// Command aqetrace renders the Fig. 14-style execution trace of one TPC-H
// query under a chosen execution mode.
//
//	aqetrace -q 11 -sf 0.1 -mode adaptive -workers 4
package main

import (
	"flag"
	"fmt"
	"log"

	"aqe/internal/exec"
	"aqe/internal/storage"
	"aqe/internal/tpch"
)

var (
	qn   = flag.Int("q", 11, "TPC-H query number (1-22)")
	sf   = flag.Float64("sf", 0.1, "scale factor")
	mode = flag.String("mode", "adaptive", "bytecode|unoptimized|optimized|adaptive")
	wrk  = flag.Int("workers", 4, "worker threads")
)

func main() {
	flag.Parse()
	m := map[string]exec.Mode{
		"bytecode": exec.ModeBytecode, "unoptimized": exec.ModeUnoptimized,
		"optimized": exec.ModeOptimized, "adaptive": exec.ModeAdaptive,
	}[*mode]
	cat := tpch.Gen(*sf)
	eng := exec.New(exec.Options{Workers: *wrk, Mode: m, Cost: exec.Paper(),
		Trace: true, MorselSize: 1024})
	q := tpch.Query(cat, *qn)
	prior := map[string]*storage.Table{}
	var merged *exec.Trace
	for i, stg := range q.Stages {
		node := stg.Build(prior)
		res, err := eng.RunPlan(node, stg.Name)
		if err != nil {
			log.Fatal(err)
		}
		if i < len(q.Stages)-1 {
			prior[stg.Name] = res.ToTable(stg.Name)
		}
		if merged == nil {
			merged = res.Trace
		} else {
			merged.Merge(res.Trace)
		}
	}
	fmt.Printf("TPC-H Q%d, SF %g, %s mode, %d workers\n\n", *qn, *sf, *mode, *wrk)
	fmt.Print(merged.Gantt(110))

	// Admission-queue waits ('A' on the compile lane above).
	first := true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvAdmit {
			continue
		}
		if first {
			fmt.Println("\nadmission queue:")
			first = false
		}
		fmt.Printf("  %s: queued %.3f ms before execution\n",
			ev.Label, (ev.End - ev.Start).Seconds()*1e3)
	}

	// Cancellations ('X' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvCancel {
			continue
		}
		if first {
			fmt.Println("\ncancellations:")
			first = false
		}
		fmt.Printf("  %s: cancelled at %.3f ms\n",
			ev.Label, ev.Start.Seconds()*1e3)
	}

	// Zone-map pruning ('Z' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvPrune {
			continue
		}
		if first {
			fmt.Println("\nzone-map pruning:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %d block(s) / %d tuples skipped\n",
			ev.Pipeline, ev.Label, ev.Parts, ev.Tuples)
	}

	// Dictionary-code rewrites ('D' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvDictRewrite {
			continue
		}
		if first {
			fmt.Println("\ndictionary rewrites:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %d string op(s) compiled against codes\n",
			ev.Pipeline, ev.Label, ev.Tuples)
	}

	// Pipeline-breaker finalizations ('F' on the compile lane above).
	first = true
	for _, ev := range merged.Events() {
		if ev.Kind != exec.EvFinalize {
			continue
		}
		if first {
			fmt.Println("\nbreaker finalizations:")
			first = false
		}
		fmt.Printf("  pipeline %d (%s): %.3f ms, %d partition(s), %d tuples\n",
			ev.Pipeline, ev.Label, (ev.End - ev.Start).Seconds()*1e3, ev.Parts, ev.Tuples)
	}
}
