// Command aqe is an interactive SQL shell over TPC-H data.
//
//	aqe -sf 0.05 -mode adaptive
//	aqe> SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"aqe"
)

var (
	sf   = flag.Float64("sf", 0.01, "TPC-H scale factor")
	mode = flag.String("mode", "adaptive", "bytecode|unoptimized|optimized|adaptive")
	wrk  = flag.Int("workers", 4, "worker threads")
)

func main() {
	flag.Parse()
	m := map[string]aqe.Mode{
		"bytecode": aqe.ModeBytecode, "unoptimized": aqe.ModeUnoptimized,
		"optimized": aqe.ModeOptimized, "adaptive": aqe.ModeAdaptive,
	}[*mode]
	db := aqe.Open(aqe.Options{Workers: *wrk, Mode: m})
	fmt.Printf("loading TPC-H at SF %g...\n", *sf)
	db.LoadTPCH(*sf)
	fmt.Printf("ready (%s mode). Tables: %s\n", *mode,
		strings.Join(db.Catalog().Names(), ", "))
	fmt.Println(`type SQL, "\q" to quit, "\tpch N" to run TPC-H query N`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("aqe> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case strings.HasPrefix(line, `\tpch `):
			var n int
			fmt.Sscanf(line[6:], "%d", &n)
			if n < 1 || n > 22 {
				fmt.Println("tpch wants 1..22")
				continue
			}
			res, err := db.Exec(db.TPCHQuery(n))
			show(res, err)
		default:
			res, err := db.ExecSQL(line)
			show(res, err)
		}
	}
}

func show(res *aqe.Result, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(aqe.FormatRows(res, 25))
	fmt.Printf("(%d rows; codegen %v, exec %v, tiers %v)\n",
		len(res.Rows), res.Stats.Codegen, res.Stats.Exec, res.Stats.FinalLevels)
	if res.Stats.TuplesPruned > 0 {
		fmt.Printf("(zone maps: %d blocks / %d tuples pruned, %.1f%% of prunable scans)\n",
			res.Stats.BlocksPruned, res.Stats.TuplesPruned,
			100*float64(res.Stats.TuplesPruned)/float64(res.Stats.PrunableTuples))
	}
	if res.Stats.DictRewrites > 0 {
		fmt.Printf("(dictionary: %d string op(s) rewritten to codes, %d hit, %d string block(s) pruned)\n",
			res.Stats.DictRewrites, res.Stats.DictHits, res.Stats.StringBlocksPruned)
	}
}
