// Command aqe is an interactive SQL shell over TPC-H data.
//
//	aqe -sf 0.05 -mode adaptive -maxq 4
//	aqe> SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag
//	aqe> PREPARE big AS SELECT count(*) FROM orders WHERE o_totalprice > $1
//	aqe> EXECUTE big (150000.00)
//	aqe> \bg SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey
//	aqe> \jobs
//	aqe> \cancel 1
//
// Foreground statements and background jobs (\bg) share one engine: the
// scheduler interleaves their morsels on a common worker pool, queueing
// arrivals beyond -maxq in FIFO order.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"aqe"
)

var (
	sf      = flag.Float64("sf", 0.01, "TPC-H scale factor")
	mode    = flag.String("mode", "adaptive", "bytecode|unoptimized|optimized|native|vector|adaptive")
	wrk     = flag.Int("workers", 4, "per-query worker slots")
	maxq    = flag.Int("maxq", 8, "max concurrently executing queries (admission cap)")
	timeout = flag.Duration("timeout", 0, "per-statement deadline (0 = none)")
)

// job is one background statement launched with \bg.
type job struct {
	id     int
	sql    string
	cancel context.CancelFunc
	done   chan struct{}
	res    *aqe.Result
	err    error
	start  time.Time
}

func main() {
	flag.Parse()
	m := map[string]aqe.Mode{
		"bytecode": aqe.ModeBytecode, "unoptimized": aqe.ModeUnoptimized,
		"optimized": aqe.ModeOptimized, "adaptive": aqe.ModeAdaptive,
		"native": aqe.ModeNative, "vector": aqe.ModeVector,
	}[*mode]
	db := aqe.Open(aqe.Options{Workers: *wrk, Mode: m, MaxConcurrent: *maxq})
	sess := db.NewSession("")
	fmt.Printf("loading TPC-H at SF %g...\n", *sf)
	db.LoadTPCH(*sf)
	fmt.Printf("ready (%s mode, admission cap %d). Tables: %s\n", *mode, *maxq,
		strings.Join(db.Catalog().Names(), ", "))
	fmt.Println(`type SQL (PREPARE name AS ... / EXECUTE name (args) / DEALLOCATE name`)
	fmt.Println(`manage prepared statements), "\q" to quit, "\tpch N" to run TPC-H query N,`)
	fmt.Println(`"\prepared" to list prepared statements,`)
	fmt.Println(`"\bg SQL" to run in background, "\jobs" to list, "\cancel N" to stop one`)

	var mu sync.Mutex
	jobs := map[int]*job{}
	nextID := 1

	stmtCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.WithCancel(context.Background())
	}

	// reap prints results of background jobs that finished since the last
	// prompt and removes them from the table.
	reap := func() {
		mu.Lock()
		defer mu.Unlock()
		for id, j := range jobs {
			select {
			case <-j.done:
				fmt.Printf("-- job %d done (%s):\n", id, truncate(j.sql, 50))
				show(j.res, j.err)
				delete(jobs, id)
			default:
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		reap()
		fmt.Print("aqe> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\prepared`:
			names := sess.Prepared()
			if len(names) == 0 {
				fmt.Println("no prepared statements")
			}
			for _, n := range names {
				fmt.Println("  " + n)
			}
		case line == `\jobs`:
			mu.Lock()
			if len(jobs) == 0 {
				fmt.Println("no background jobs")
			}
			for id, j := range jobs {
				state := "running"
				select {
				case <-j.done:
					state = "finished"
				default:
				}
				fmt.Printf("  job %d [%s, %v]: %s\n", id, state,
					time.Since(j.start).Round(time.Millisecond), truncate(j.sql, 60))
			}
			mu.Unlock()
		case strings.HasPrefix(line, `\cancel `):
			var id int
			fmt.Sscanf(line[8:], "%d", &id)
			mu.Lock()
			j := jobs[id]
			mu.Unlock()
			if j == nil {
				fmt.Printf("no job %d\n", id)
				continue
			}
			j.cancel()
			<-j.done
			fmt.Printf("job %d cancelled: %v\n", id, j.err)
			mu.Lock()
			delete(jobs, id)
			mu.Unlock()
		case strings.HasPrefix(line, `\bg `):
			sql := strings.TrimSpace(line[4:])
			ctx, cancel := stmtCtx()
			j := &job{id: nextID, sql: sql, cancel: cancel,
				done: make(chan struct{}), start: time.Now()}
			nextID++
			mu.Lock()
			jobs[j.id] = j
			mu.Unlock()
			go func() {
				defer cancel()
				j.res, j.err = sess.Exec(ctx, sql)
				close(j.done)
			}()
			fmt.Printf("job %d started\n", j.id)
		case strings.HasPrefix(line, `\tpch `):
			var n int
			fmt.Sscanf(line[6:], "%d", &n)
			if n < 1 || n > 22 {
				fmt.Println("tpch wants 1..22")
				continue
			}
			ctx, cancel := stmtCtx()
			res, err := db.ExecCtx(ctx, db.TPCHQuery(n))
			cancel()
			show(res, err)
		default:
			ctx, cancel := stmtCtx()
			res, err := sess.Exec(ctx, line)
			cancel()
			show(res, err)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

func show(res *aqe.Result, err error) {
	if err != nil {
		fmt.Println("error:", err)
		if res != nil && res.Stats.Cancelled {
			fmt.Printf("(cancelled after %v)\n", res.Stats.Total)
		}
		return
	}
	if len(res.Cols) == 0 && len(res.Rows) == 0 {
		fmt.Println("ok")
		return
	}
	fmt.Print(aqe.FormatRows(res, 25))
	fmt.Printf("(%d rows; codegen %v, exec %v, tiers %v)\n",
		len(res.Rows), res.Stats.Codegen, res.Stats.Exec, res.Stats.FinalLevels)
	if res.Stats.VectorMorsels > 0 || res.Stats.EngineSwitches > 0 {
		fmt.Printf("(engine: %d vectorized morsel(s), %d engine switch(es))\n",
			res.Stats.VectorMorsels, res.Stats.EngineSwitches)
	}
	if res.Stats.Queued {
		fmt.Printf("(queued %v at the admission gate)\n", res.Stats.WaitTime)
	}
	if res.Stats.TuplesPruned > 0 {
		fmt.Printf("(zone maps: %d blocks / %d tuples pruned, %.1f%% of prunable scans)\n",
			res.Stats.BlocksPruned, res.Stats.TuplesPruned,
			100*float64(res.Stats.TuplesPruned)/float64(res.Stats.PrunableTuples))
	}
	if res.Stats.DictRewrites > 0 {
		fmt.Printf("(dictionary: %d string op(s) rewritten to codes, %d hit, %d string block(s) pruned)\n",
			res.Stats.DictRewrites, res.Stats.DictHits, res.Stats.StringBlocksPruned)
	}
}
