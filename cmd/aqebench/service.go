package main

import (
	"fmt"
	"math/rand"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aqe"
	"aqe/internal/server"
)

// ---- service: open-loop load against the wire front end ----
//
// Unlike the closed-loop concurrency experiment (clients wait for each
// response before sending the next), this drives the binary protocol
// open loop: arrivals come from a Poisson process at a target rate
// whether or not earlier requests finished, which is how latency
// percentiles degrade in a real service. Two quota-limited tenants run
// a cache-hot prepared statement; an aggressive third tenant floods the
// server closed-loop with heavy TPC-H queries. Per-tenant admission
// quotas plus weighted fair-share worker scheduling are what keep the
// limited tenants' tail latency from collapsing.

// svcStmt is the parameterized statement the limited tenants execute —
// one plan-cache entry serves every binding at every connection.
const svcStmt = `SELECT c_mktsegment, count(*) AS n, sum(o_totalprice) AS s
                 FROM customer, orders
                 WHERE c_custkey = o_custkey AND o_totalprice > $1
                 GROUP BY c_mktsegment`

// svcPool hands out prepared binary-protocol connections for one
// tenant, dialing (and re-preparing) on demand.
type svcPool struct {
	addr   string
	tenant string
	mu     sync.Mutex
	free   []*server.Client
}

func (p *svcPool) get() (*server.Client, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		cl := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()
	cl, err := server.Dial(p.addr, p.tenant)
	if err != nil {
		return nil, err
	}
	if err := cl.Prepare("svc", svcStmt); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

func (p *svcPool) put(cl *server.Client) {
	p.mu.Lock()
	p.free = append(p.free, cl)
	p.mu.Unlock()
}

func (p *svcPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cl := range p.free {
		cl.Close()
	}
	p.free = nil
}

// svcAgg aggregates the server-reported stats trailers of one phase.
type svcAgg struct {
	execNS, waitNS, totalNS int64
	queued                  int64
}

// svcPhase is one tenant's measured phase: client-observed latencies
// (which on a shared host include load-generator co-location noise),
// server-side request latencies (admission wait + execution + result
// streaming, the span the server's QoS machinery governs), the error
// count, and the aggregate stats trailers.
type svcPhase struct {
	lats []time.Duration // client-observed
	srv  []time.Duration // server-side per request
	errs int
	agg  svcAgg
}

// openLoop fires Poisson arrivals at the target QPS for dur; every
// arrival executes the prepared statement with a random binding.
func openLoop(pool *svcPool, qps float64, dur time.Duration, seed int64) svcPhase {
	rng := rand.New(rand.NewSource(seed))
	var (
		mu sync.Mutex
		ph svcPhase
		wg sync.WaitGroup
	)
	// Cap in-flight requests so a saturated server degrades to drops we
	// can count instead of unbounded goroutine growth.
	inflight := make(chan struct{}, 512)
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
		time.Sleep(gap)
		arg := fmt.Sprintf("%d.%02d", rng.Intn(400000), rng.Intn(100))
		select {
		case inflight <- struct{}{}:
		default:
			mu.Lock()
			ph.errs++ // dropped: over the in-flight cap
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(arg string) {
			defer wg.Done()
			defer func() { <-inflight }()
			cl, err := pool.get()
			if err == nil {
				t0 := time.Now()
				var res *server.ClientResult
				res, err = cl.Execute("svc", []string{arg}, 0)
				d := time.Since(t0)
				if err == nil {
					pool.put(cl)
					mu.Lock()
					ph.lats = append(ph.lats, d)
					ph.srv = append(ph.srv, time.Duration(res.Stats.TotalNS))
					ph.agg.execNS += res.Stats.ExecNS
					ph.agg.waitNS += res.Stats.WaitNS
					ph.agg.totalNS += res.Stats.TotalNS
					if res.Stats.Queued {
						ph.agg.queued++
					}
					mu.Unlock()
					return
				}
				cl.Close()
			}
			mu.Lock()
			ph.errs++
			mu.Unlock()
		}(arg)
	}
	wg.Wait()
	return ph
}

func pctile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

func svcRow(phase, tenant string, ph svcPhase) {
	n := int64(len(ph.lats))
	var meanExec, meanWait float64
	if n > 0 {
		meanExec = float64(ph.agg.execNS) / float64(n) / 1e6
		meanWait = float64(ph.agg.waitNS) / float64(n) / 1e6
	}
	fmt.Printf("%-12s %-8s %6d %10.2f %10.2f %10.2f %10.2f %6d   exec %.2f wait %.2f q %d\n",
		phase, tenant, len(ph.lats),
		ms(pctile(ph.lats, 0.50)), ms(pctile(ph.lats, 0.95)), ms(pctile(ph.lats, 0.99)),
		ms(pctile(ph.srv, 0.95)), ph.errs,
		meanExec, meanWait, ph.agg.queued)
}

func serviceExp() {
	sf := *sfFlag
	qps := *qpsFlag
	dur := *durFlag
	// Latency-oriented GC setting: the working set at bench scale factors
	// is tiny, and on a small-GOMAXPROCS host GC mark assists are charged
	// to whatever goroutine happens to allocate — usually a limited
	// tenant's coordinator, not the hog that produced the garbage. Trade
	// heap headroom for fewer assists, in both phases alike.
	debug.SetGCPercent(800)
	db := aqe.Open(aqe.Options{
		Workers:                *workers,
		MaxConcurrent:          8,
		MaxConcurrentPerTenant: 1,
		TenantWeights:          map[string]int{"alpha": 8, "beta": 8, "hog": 1},
		// A morsel is the preemption quantum: capping growth at 4K tuples
		// keeps any one unit sub-millisecond, so a limited tenant's query
		// never stalls behind a long hog morsel.
		MorselCap: 4096,
	})
	db.LoadTPCH(sf)
	srv := server.New(server.Options{DB: db})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.ServeBinary(ln)
	addr := ln.Addr().String()

	fmt.Printf("open-loop service load at SF %.2f over the binary protocol\n", sf)
	fmt.Printf("admission: 8 concurrent total, 1 per tenant; weights alpha=8 beta=8 hog=1\n")
	fmt.Printf("limited tenants: %.0f QPS Poisson each, prepared statement with random bindings\n", qps)
	fmt.Printf("%-12s %-8s %6s %10s %10s %10s %10s %6s\n",
		"phase", "tenant", "reqs", "p50[ms]", "p95[ms]", "p99[ms]", "srv95[ms]", "err")

	alpha := &svcPool{addr: addr, tenant: "alpha"}
	beta := &svcPool{addr: addr, tenant: "beta"}
	defer alpha.closeAll()
	defer beta.closeAll()

	// Unrecorded warmup for both tenants: the adaptive engine JITs and
	// tier-switches on early executions and the heap is still sizing
	// itself, so the first requests are not the steady state a service
	// runs in. Warming both tenants alike keeps the baselines comparable.
	for _, p := range []*svcPool{alpha, beta} {
		if cl, err := p.get(); err == nil {
			for i := 0; i < 10; i++ {
				cl.Execute("svc", []string{fmt.Sprintf("%d.00", 10000*i)}, 0)
			}
			p.put(cl)
		}
	}

	// Phase 1: each limited tenant alone.
	aloneA := openLoop(alpha, qps, dur, 1)
	svcRow("alone", "alpha", aloneA)
	aloneB := openLoop(beta, qps, dur, 2)
	svcRow("alone", "beta", aloneB)

	// Phase 2: both limited tenants under an aggressive closed-loop
	// tenant saturating the admission gate with heavy queries.
	stop := atomic.Bool{}
	var hogDone sync.WaitGroup
	var hogQueries atomic.Int64
	// Q1 and Q6 are the heavy lineitem scans: nearly all of their work is
	// morselized through the shared pool, where fair-share scheduling
	// governs it. (Join-heavy queries like Q9 additionally run a breaker
	// finalize on the coordinator goroutine, which a 1-worker pool cannot
	// interleave — see internal/exec pfor.)
	hogQ := []int{1, 6}
	for i := 0; i < 2; i++ {
		hogDone.Add(1)
		go func(i int) {
			defer hogDone.Done()
			cl, err := server.Dial(addr, "hog")
			if err != nil {
				return
			}
			defer cl.Close()
			for k := 0; !stop.Load(); k++ {
				if _, err := cl.TPCH(hogQ[(i+k)%len(hogQ)], 0); err != nil {
					return
				}
				hogQueries.Add(1)
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the hog saturate the gate
	var sharedA, sharedB svcPhase
	var both sync.WaitGroup
	both.Add(2)
	go func() { defer both.Done(); sharedA = openLoop(alpha, qps, dur, 3) }()
	go func() { defer both.Done(); sharedB = openLoop(beta, qps, dur, 4) }()
	both.Wait()
	stop.Store(true)
	hogDone.Wait()
	svcRow("shared+hog", "alpha", sharedA)
	svcRow("shared+hog", "beta", sharedB)
	fmt.Printf("hog completed %d heavy queries during the shared phase\n", hogQueries.Load())

	degrade := func(alone, shared []time.Duration) float64 {
		a := ms(pctile(alone, 0.95))
		if a == 0 {
			return 0
		}
		return ms(pctile(shared, 0.95)) / a
	}
	// The QoS bound is evaluated on server-side request latency (srv95:
	// admission wait + execution + result streaming) — the span admission
	// quotas and fair-share scheduling govern. The client-observed ratio
	// is printed alongside; with the load generator co-located on the
	// same host it additionally includes the generator's own scheduling
	// delays under saturation.
	fmt.Printf("p95 degradation under the hog (server-side): alpha %.2fx, beta %.2fx (quota+fair-share bound: <=2x)\n",
		degrade(aloneA.srv, sharedA.srv), degrade(aloneB.srv, sharedB.srv))
	fmt.Printf("p95 degradation under the hog (client-observed): alpha %.2fx, beta %.2fx\n",
		degrade(aloneA.lats, sharedA.lats), degrade(aloneB.lats, sharedB.lats))

	st := db.Engine().SchedStats()
	fmt.Printf("per-tenant admission: ")
	for _, tn := range []string{"alpha", "beta", "hog"} {
		ts := st.Tenants[tn]
		fmt.Printf("%s admitted=%d queued=%d  ", tn, ts.Admitted, ts.Queued)
	}
	fmt.Println()
}
