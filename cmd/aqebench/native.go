package main

import (
	"fmt"
	"math"
	"time"

	"aqe/internal/asm"
	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/tpch"
	"aqe/internal/vm"
)

// ---- native: the tier-6 template JIT vs the closure tiers and fused VM ----

// hashWalkPlan builds the native tier's target regime: a join whose build
// side carries duplicate keys (chains of ~8 tuples), so the probe pipeline
// is dominated by the hash-probe chain walk with its Bloom pre-check —
// tight pointer-chasing loops where per-op dispatch overhead is largest.
func hashWalkPlan(sf float64) (plan.Node, int64) {
	nBuild := int(sf * 2_000_000)
	if nBuild < 100_000 {
		nBuild = 100_000
	}
	nProbe := 2 * nBuild
	bk := storage.NewColumn("k", storage.Int64)
	bv := storage.NewColumn("v", storage.Int64)
	for i := 0; i < nBuild; i++ {
		bk.AppendInt64(int64(i % (nBuild / 8))) // ~8-tuple chains
		bv.AppendInt64(int64(i))
	}
	bt := storage.NewTable("hwbuild", bk, bv)
	pk := storage.NewColumn("p", storage.Int64)
	for i := 0; i < nProbe; i++ {
		// Half the probes miss: the Bloom pre-check prunes their chain walk.
		pk.AppendInt64(int64(uint64(i) * 0x9E3779B97F4A7C15 % uint64(nBuild/4)))
	}
	pt := storage.NewTable("hwprobe", pk)
	b := plan.NewScan(bt, "k", "v")
	p := plan.NewScan(pt, "p")
	j := plan.NewJoin(plan.Inner, b, p,
		[]expr.Expr{plan.C(b.Schema(), "k")},
		[]expr.Expr{plan.C(p.Schema(), "p")},
		[]string{"v"})
	jsch := j.Schema()
	node := plan.NewGroupBy(j, nil, nil,
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(jsch, "v"), Name: "sv"},
			{Func: plan.CountStar, Name: "n"},
		})
	return node, int64(nBuild + nProbe)
}

// nativeExp measures the copy-and-patch tier against every other tier on
// the TPC-H trio (Q3/Q5/Q10: join-heavy pipelines) and the hash-walk
// synthetic, as per-tier execution time / source-morsel rate, then the
// real (unsimulated) compile latency of each backend per workload. The
// target regime is the hash-walk pipeline: native machine code must beat
// the fused bytecode VM there.
func nativeExp() {
	cat := catalog(*sfFlag)
	const reps = 3
	if !asm.Supported() {
		fmt.Println("no native backend on this platform: ModeNative degrades to the optimized closure tier (fallback counters below)")
	}

	type workload struct {
		name string
		run  func(e *exec.Engine) (*exec.Result, error)
		rows int64 // source tuples, for the morsel rate
	}
	var wls []workload
	for _, qn := range []int{3, 5, 10} {
		qn := qn
		q := tpch.Query(cat, qn)
		var rows int64
		for _, tn := range []string{"lineitem", "orders", "customer", "supplier", "nation"} {
			if t := cat.Table(tn); t != nil {
				rows += int64(t.Rows())
			}
		}
		wls = append(wls, workload{name: fmt.Sprintf("Q%d", qn),
			run:  func(e *exec.Engine) (*exec.Result, error) { return e.Run(q) },
			rows: rows})
	}
	hwNode, hwRows := hashWalkPlan(*sfFlag)
	wls = append(wls, workload{name: "hashwalk",
		run:  func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(hwNode, "hashwalk") },
		rows: hwRows})

	modes := []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized,
		exec.ModeOptimized, exec.ModeNative}
	fmt.Printf("per-tier execution at SF %.2f, %d workers (static modes, real costs, no cache, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-10s %10s %10s %10s %10s %9s %9s %7s\n",
		"workload", "bc[ms]", "unopt[ms]", "opt[ms]", "native[ms]",
		"nat/bc", "Mtup/s", "n.mors")
	var hwNative, hwBytecode float64
	for _, wl := range wls {
		var cells []float64
		var nat *exec.Result
		for _, mode := range modes {
			best := (*exec.Result)(nil)
			for r := 0; r < reps; r++ {
				e := exec.New(exec.Options{Workers: *workers, Mode: mode, Cost: exec.Native()})
				res, err := wl.run(e)
				if err != nil {
					panic(fmt.Sprintf("%s %v: %v", wl.name, mode, err))
				}
				if best == nil || res.Stats.Exec < best.Stats.Exec {
					best = res
				}
			}
			cells = append(cells, ms(best.Stats.Exec))
			if mode == exec.ModeNative {
				nat = best
			}
		}
		rate := float64(wl.rows) / (cells[3] / 1e3) / 1e6
		fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f %8.2fx %9.1f %7d\n",
			wl.name, cells[0], cells[1], cells[2], cells[3],
			cells[0]/cells[3], rate, nat.Stats.NativeMorsels)
		if nat.Stats.NativeFallbacks > 0 {
			fmt.Printf("%-10s (%d pipelines fell back to the optimized closure tier)\n",
				"", nat.Stats.NativeFallbacks)
		}
		if wl.name == "hashwalk" {
			hwNative, hwBytecode = cells[3], cells[0]
		}
	}

	// Real per-backend compile latency, whole module, no latency model:
	// the copy-and-patch claim is bytecode ≪ native ≪ unoptimized closure
	// ≪ optimized closure.
	fmt.Printf("\nreal compile latency per workload [ms] (whole module, no cost model)\n")
	fmt.Printf("%-10s %8s %10s %10s %10s %10s\n",
		"workload", "instrs", "bc", "native", "unopt", "opt")
	latency := func(name string, node plan.Node) {
		mem := rt.NewMemory()
		cq := mustCompile(node, mem, name)
		var bc, nat, unopt, opt time.Duration
		natOK := asm.Supported()
		for _, pl := range cq.Pipelines {
			t0 := time.Now()
			prog, err := vm.Translate(pl.Fn, vm.Options{})
			if err != nil {
				panic(err)
			}
			bc += time.Since(t0)
			if natOK {
				fn := pl.Fn.Clone() // Compile splits edges in place; clone outside the timer
				t0 = time.Now()
				if _, err := jit.Compile(fn, jit.Native, prog); err != nil {
					natOK = false
				} else {
					nat += time.Since(t0)
				}
			}
			t0 = time.Now()
			if _, err := jit.Compile(pl.Fn, jit.Unoptimized, prog); err != nil {
				panic(err)
			}
			unopt += time.Since(t0)
			t0 = time.Now()
			if _, err := jit.Compile(pl.Fn, jit.Optimized, prog); err != nil {
				panic(err)
			}
			opt += time.Since(t0)
		}
		natMs := math.NaN()
		if natOK {
			natMs = ms(nat)
		}
		fmt.Printf("%-10s %8d %10.3f %10.3f %10.3f %10.3f\n",
			name, cq.Module.NumInstrs(), ms(bc), natMs, ms(unopt), ms(opt))
	}
	for _, qn := range []int{3, 5, 10} {
		latency(fmt.Sprintf("Q%d", qn), tpch.Query(cat, qn).Stages[0].Build(nil))
	}
	latency("hashwalk", hwNode)

	if asm.Supported() {
		verdict := "MET"
		if hwNative > hwBytecode {
			verdict = "MISSED"
		}
		fmt.Printf("\ntarget (native >= fused VM morsel rate on the hash-walk pipeline): %s (native %.2f ms vs bytecode %.2f ms)\n",
			verdict, hwNative, hwBytecode)
	}
}
