package main

import (
	"fmt"
	"math"
	"time"

	"aqe/internal/asm"
	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/ir"
	"aqe/internal/jit"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/tpch"
	"aqe/internal/vm"
)

// ---- native: the tier-6 template JIT vs the closure tiers and fused VM ----

// hashWalkPlan builds the native tier's target regime: a join whose build
// side carries duplicate keys (chains of ~8 tuples), so the probe pipeline
// is dominated by the hash-probe chain walk with its Bloom pre-check —
// tight pointer-chasing loops where per-op dispatch overhead is largest.
func hashWalkPlan(sf float64) (plan.Node, int64) {
	nBuild := int(sf * 2_000_000)
	if nBuild < 100_000 {
		nBuild = 100_000
	}
	nProbe := 2 * nBuild
	bk := storage.NewColumn("k", storage.Int64)
	bv := storage.NewColumn("v", storage.Int64)
	for i := 0; i < nBuild; i++ {
		bk.AppendInt64(int64(i % (nBuild / 8))) // ~8-tuple chains
		bv.AppendInt64(int64(i))
	}
	bt := storage.NewTable("hwbuild", bk, bv)
	pk := storage.NewColumn("p", storage.Int64)
	for i := 0; i < nProbe; i++ {
		// Half the probes miss: the Bloom pre-check prunes their chain walk.
		pk.AppendInt64(int64(uint64(i) * 0x9E3779B97F4A7C15 % uint64(nBuild/4)))
	}
	pt := storage.NewTable("hwprobe", pk)
	b := plan.NewScan(bt, "k", "v")
	p := plan.NewScan(pt, "p")
	j := plan.NewJoin(plan.Inner, b, p,
		[]expr.Expr{plan.C(b.Schema(), "k")},
		[]expr.Expr{plan.C(p.Schema(), "p")},
		[]string{"v"})
	jsch := j.Schema()
	node := plan.NewGroupBy(j, nil, nil,
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(jsch, "v"), Name: "sv"},
			{Func: plan.CountStar, Name: "n"},
		})
	return node, int64(nBuild + nProbe)
}

// arithPlan builds the compute-dense regime: one scan whose per-tuple
// work is a deep arithmetic expression tree feeding scalar aggregates —
// long dependency chains of single-use intermediates, which is exactly
// the slot traffic the register allocator removes. Q1 has the same shape
// but its wide decimal columns keep it partly load-bound.
func arithPlan(sf float64) (plan.Node, int64) {
	n := int(sf * 6_000_000)
	if n < 500_000 {
		n = 500_000
	}
	ca := storage.NewColumn("a", storage.Int64)
	cb := storage.NewColumn("b", storage.Int64)
	for i := 0; i < n; i++ {
		ca.AppendInt64(int64(i%9973 + 1))
		cb.AppendInt64(int64(i%127 + 1))
	}
	tb := storage.NewTable("arith", ca, cb)
	s := plan.NewScan(tb, "a", "b")
	sch := s.Schema()
	a, b := plan.C(sch, "a"), plan.C(sch, "b")
	// A ~30-op polynomial-style chain per tuple, all intermediates single
	// use. Divisors are strictly positive so no trap exits fire.
	poly := func(x, y expr.Expr) expr.Expr {
		t1 := expr.Add(expr.Mul(x, expr.Int(3)), y)
		t2 := expr.Mul(expr.Add(t1, expr.Int(7)), expr.Sub(x, expr.Int(5)))
		t3 := expr.Add(expr.Mul(t2, x), expr.Mul(t1, expr.Int(13)))
		t4 := expr.Sub(expr.Mul(t3, expr.Int(11)), expr.Div(t2, y))
		return expr.Add(expr.Mul(t4, expr.Int(17)), expr.Div(t3, expr.Add(y, expr.Int(1))))
	}
	e1 := poly(a, b)
	e2 := poly(b, a)
	e3 := expr.Sub(expr.Mul(e1, expr.Int(5)), expr.Div(e2, expr.Int(3)))
	// Scale each aggregate input down so the Sum over millions of tuples
	// stays inside int64 (the per-tuple chains reach ~1e15).
	shrink := func(e expr.Expr) expr.Expr { return expr.Div(e, expr.Int(1<<20)) }
	node := plan.NewGroupBy(s, nil, nil,
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: shrink(e1), Name: "s1"},
			{Func: plan.Sum, Arg: shrink(e2), Name: "s2"},
			{Func: plan.Sum, Arg: shrink(e3), Name: "s3"},
		})
	return node, int64(n)
}

// arithfPlan is the floating-point analogue of arithPlan: the same deep
// single-use chains, but over f64 columns so the slot traffic being
// eliminated is XMM load/store rather than GPR — the register file the
// slot backend hits hardest (every movsd round-trips the store buffer).
func arithfPlan(sf float64) (plan.Node, int64) {
	n := int(sf * 6_000_000)
	if n < 500_000 {
		n = 500_000
	}
	cx := storage.NewColumn("x", storage.Float64)
	cy := storage.NewColumn("y", storage.Float64)
	for i := 0; i < n; i++ {
		cx.AppendFloat64(float64(i%9973)/64 + 1)
		cy.AppendFloat64(float64(i%127)/8 + 1)
	}
	tb := storage.NewTable("arithf", cx, cy)
	s := plan.NewScan(tb, "x", "y")
	sch := s.Schema()
	x, y := plan.C(sch, "x"), plan.C(sch, "y")
	poly := func(x, y expr.Expr) expr.Expr {
		t1 := expr.Add(expr.Mul(x, expr.Float(1.5)), y)
		t2 := expr.Mul(expr.Add(t1, expr.Float(0.25)), expr.Sub(x, expr.Float(0.5)))
		t3 := expr.Add(expr.Mul(t2, x), expr.Mul(t1, expr.Float(3.25)))
		t4 := expr.Sub(expr.Mul(t3, expr.Float(1.125)), expr.Div(t2, y))
		return expr.Add(expr.Mul(t4, expr.Float(0.75)), expr.Div(t3, expr.Add(y, expr.Float(1))))
	}
	e1 := poly(x, y)
	e2 := poly(y, x)
	e3 := expr.Sub(expr.Mul(e1, expr.Float(0.5)), expr.Div(e2, expr.Float(3)))
	node := plan.NewGroupBy(s, nil, nil,
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: e1, Name: "s1"},
			{Func: plan.Sum, Arg: e2, Name: "s2"},
			{Func: plan.Sum, Arg: e3, Name: "s3"},
		})
	return node, int64(n)
}

// nativeExp measures the copy-and-patch tier against every other tier on
// the TPC-H trio (Q3/Q5/Q10: join-heavy pipelines) and the hash-walk
// synthetic, as per-tier execution time / source-morsel rate, then the
// real (unsimulated) compile latency of each backend per workload. The
// target regime is the hash-walk pipeline: native machine code must beat
// the fused bytecode VM there.
func nativeExp() {
	cat := catalog(*sfFlag)
	const reps = 3
	if !asm.Supported() {
		fmt.Println("no native backend on this platform: ModeNative degrades to the optimized closure tier (fallback counters below)")
	}

	type workload struct {
		name string
		run  func(e *exec.Engine) (*exec.Result, error)
		rows int64 // source tuples, for the morsel rate
	}
	var wls []workload
	// Q1 is the compute-dense regime (decimal arithmetic over one wide
	// scan) where the register allocator has the most slot traffic to
	// remove; Q3/Q5/Q10 are the join-heavy pipelines.
	for _, qn := range []int{1, 3, 5, 10} {
		qn := qn
		q := tpch.Query(cat, qn)
		var rows int64
		tables := []string{"lineitem", "orders", "customer", "supplier", "nation"}
		if qn == 1 {
			tables = []string{"lineitem"}
		}
		for _, tn := range tables {
			if t := cat.Table(tn); t != nil {
				rows += int64(t.Rows())
			}
		}
		wls = append(wls, workload{name: fmt.Sprintf("Q%d", qn),
			run:  func(e *exec.Engine) (*exec.Result, error) { return e.Run(q) },
			rows: rows})
	}
	hwNode, hwRows := hashWalkPlan(*sfFlag)
	wls = append(wls, workload{name: "hashwalk",
		run:  func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(hwNode, "hashwalk") },
		rows: hwRows})
	arNode, arRows := arithPlan(*sfFlag)
	wls = append(wls, workload{name: "arith",
		run:  func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(arNode, "arith") },
		rows: arRows})
	afNode, afRows := arithfPlan(*sfFlag)
	wls = append(wls, workload{name: "arithf",
		run:  func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(afNode, "arithf") },
		rows: afRows})

	modes := []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized,
		exec.ModeOptimized, exec.ModeNative}
	fmt.Printf("per-tier execution at SF %.2f, %d workers (static modes, real costs, no cache, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-10s %10s %10s %10s %10s %9s %9s %7s\n",
		"workload", "bc[ms]", "unopt[ms]", "opt[ms]", "native[ms]",
		"nat/bc", "Mtup/s", "n.mors")
	var hwNative, hwBytecode float64
	for _, wl := range wls {
		var cells []float64
		var nat *exec.Result
		for _, mode := range modes {
			best := (*exec.Result)(nil)
			for r := 0; r < reps; r++ {
				e := exec.New(exec.Options{Workers: *workers, Mode: mode, Cost: exec.Native()})
				res, err := wl.run(e)
				if err != nil {
					panic(fmt.Sprintf("%s %v: %v", wl.name, mode, err))
				}
				if best == nil || res.Stats.Exec < best.Stats.Exec {
					best = res
				}
			}
			cells = append(cells, ms(best.Stats.Exec))
			if mode == exec.ModeNative {
				nat = best
			}
		}
		rate := float64(wl.rows) / (cells[3] / 1e3) / 1e6
		fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f %8.2fx %9.1f %7d\n",
			wl.name, cells[0], cells[1], cells[2], cells[3],
			cells[0]/cells[3], rate, nat.Stats.NativeMorsels)
		if nat.Stats.NativeFallbacks > 0 {
			fmt.Printf("%-10s (%d pipelines fell back to the optimized closure tier)\n",
				"", nat.Stats.NativeFallbacks)
		}
		if wl.name == "hashwalk" {
			hwNative, hwBytecode = cells[3], cells[0]
		}
	}

	// Register-allocator ablation: the same ModeNative run with the
	// allocator on (default) vs the slot-per-op baseline (NoRegAlloc).
	if asm.Supported() {
		// More reps than the tier table, and the two backends interleaved
		// rep by rep: the backends are often within tens of percent of each
		// other, so machine drift between two back-to-back measurement
		// phases would otherwise dominate the difference.
		const ablReps = 7
		fmt.Printf("\nregister-allocator ablation (ModeNative exec, best of %d interleaved)\n", ablReps)
		fmt.Printf("%-10s %12s %12s %9s\n", "workload", "regalloc[ms]", "slots[ms]", "speedup")
		for _, wl := range wls {
			one := func(noRA bool) float64 {
				e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeNative,
					Cost: exec.Native(), NoRegAlloc: noRA})
				res, err := wl.run(e)
				if err != nil {
					panic(fmt.Sprintf("%s ablation: %v", wl.name, err))
				}
				return ms(res.Stats.Exec)
			}
			ra, slots := math.Inf(1), math.Inf(1)
			for r := 0; r < ablReps; r++ {
				ra = math.Min(ra, one(false))
				slots = math.Min(slots, one(true))
			}
			fmt.Printf("%-10s %12.2f %12.2f %8.2fx\n", wl.name, ra, slots, slots/ra)
		}
	}

	// Real per-backend compile latency, whole module, no latency model:
	// the copy-and-patch claim is bytecode ≪ native ≪ unoptimized closure
	// ≪ optimized closure. native is the register-allocating backend,
	// nat-slot the slot-per-op baseline — their difference is the real
	// assemble-time cost of the allocator.
	fmt.Printf("\nreal compile latency per workload [ms] (whole module, no cost model)\n")
	fmt.Printf("%-10s %8s %10s %10s %10s %10s %10s\n",
		"workload", "instrs", "bc", "native", "nat-slot", "unopt", "opt")
	latency := func(name string, node plan.Node) {
		mem := rt.NewMemory()
		cq := mustCompile(node, mem, name)
		var bc, nat, natSlot, unopt, opt time.Duration
		natOK := asm.Supported()
		// Best of 5 per backend: single-shot numbers at these scales
		// (tens of microseconds) are dominated by scheduler noise.
		const reps = 5
		bestOf := func(f func() error) (time.Duration, bool) {
			best := time.Duration(math.MaxInt64)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				if err := f(); err != nil {
					return 0, false
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			return best, true
		}
		for _, pl := range cq.Pipelines {
			var prog *vm.Program
			d, ok := bestOf(func() (err error) {
				prog, err = vm.Translate(pl.Fn, vm.Options{})
				return err
			})
			if !ok {
				panic("bytecode translation failed")
			}
			bc += d
			if natOK {
				// Compile splits edges in place; clone outside the timer.
				clones := make([]*ir.Function, 2*reps)
				for i := range clones {
					clones[i] = pl.Fn.Clone()
				}
				r := 0
				d, ok := bestOf(func() error {
					fn := clones[r]
					r++
					_, err := jit.Compile(fn, jit.Native, prog)
					return err
				})
				if ok {
					nat += d
				} else {
					natOK = false
				}
				if d, ok := bestOf(func() error {
					fn := clones[r]
					r++
					_, err := jit.CompileOpts(fn, jit.Native, prog,
						jit.Options{NoRegAlloc: true})
					return err
				}); ok {
					natSlot += d
				}
			}
			d, _ = bestOf(func() error {
				_, err := jit.Compile(pl.Fn, jit.Unoptimized, prog)
				return err
			})
			unopt += d
			d, _ = bestOf(func() error {
				_, err := jit.Compile(pl.Fn, jit.Optimized, prog)
				return err
			})
			opt += d
		}
		natMs, natSlotMs := math.NaN(), math.NaN()
		if natOK {
			natMs, natSlotMs = ms(nat), ms(natSlot)
		}
		fmt.Printf("%-10s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			name, cq.Module.NumInstrs(), ms(bc), natMs, natSlotMs, ms(unopt), ms(opt))
	}
	for _, qn := range []int{1, 3, 5, 10} {
		latency(fmt.Sprintf("Q%d", qn), tpch.Query(cat, qn).Stages[0].Build(nil))
	}
	latency("hashwalk", hwNode)
	latency("arith", arNode)
	latency("arithf", afNode)

	if asm.Supported() {
		verdict := "MET"
		if hwNative > hwBytecode {
			verdict = "MISSED"
		}
		fmt.Printf("\ntarget (native >= fused VM morsel rate on the hash-walk pipeline): %s (native %.2f ms vs bytecode %.2f ms)\n",
			verdict, hwNative, hwBytecode)
	}
}
