package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"aqe/internal/exec"
	"aqe/internal/opt"
	"aqe/internal/plan"
	"aqe/internal/synth"
	"aqe/internal/tpch"
)

// joinorder measures the cost-based join orderer (internal/opt) two ways:
// TPC-H multi-join queries under the hand-built order, the optimizer's
// order, and random valid orders; then the deliberately misestimated
// synthetic star query, where mid-query replanning recovers most of the
// gap between the misestimated order and the corrected plan.
func joinorder() {
	cat := catalog(*sfFlag)
	newEng := func() *exec.Engine {
		return exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
			Cost: exec.Native()})
	}
	timePlan := func(node plan.Node, name string) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			e := newEng()
			t0 := time.Now()
			if _, err := e.RunPlan(node, name); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}

	fmt.Printf("TPC-H join orders, SF %g, %d workers, optimized mode (best of 3, total ms)\n",
		*sfFlag, *workers)
	fmt.Printf("%-6s %10s %10s %10s %10s  %s\n",
		"query", "hand", "optimizer", "random-1", "random-2", "optimizer order")
	for _, qn := range []int{3, 5, 10} {
		hand := timePlan(tpch.Query(cat, qn).Stages[0].Build(nil), "hand")
		lg, ok := tpch.Logical(cat, qn)
		if !ok {
			log.Fatalf("Q%d has no logical form", qn)
		}
		prep, err := opt.Order(lg)
		if err != nil {
			log.Fatal(err)
		}
		optT := timePlan(prep.Root, "opt")
		rng := rand.New(rand.NewSource(int64(qn)))
		var randT [2]time.Duration
		for i := range randT {
			root, err := opt.RandomOrder(lg, rng.Intn)
			if err != nil {
				log.Fatal(err)
			}
			randT[i] = timePlan(root, "rand")
		}
		fmt.Printf("Q%-5d %10.2f %10.2f %10.2f %10.2f  %s\n",
			qn, ms(hand), ms(optT), ms(randT[0]), ms(randT[1]),
			strings.Join(prep.OrderNames(), " ⋈ "))
	}

	// Misestimated star query: dimension A's skewed filter is estimated
	// ~10^4x too low, so the optimizer builds it first; the observed
	// cardinality at its hash-table finalize triggers a mid-query replan.
	factRows := int(1.6e7 * *sfFlag)
	if factRows < 20000 {
		factRows = 20000
	}
	fact, dimA, dimB := synth.MisestimateTables(factRows)
	lg := synth.MisestimateLogical(fact, dimA, dimB)
	ctx := context.Background()

	runReplan := func(threshold float64) (time.Duration, *exec.Result, *opt.Prepared) {
		var best time.Duration
		var bestRes *exec.Result
		var bestPrep *opt.Prepared
		for rep := 0; rep < 3; rep++ {
			prep, err := opt.Order(lg)
			if err != nil {
				log.Fatal(err)
			}
			e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
				Cost: exec.Native(), ReplanThreshold: threshold})
			t0 := time.Now()
			res, err := e.RunPlanReplan(ctx, prep.Root, "misestimate", prep)
			if err != nil {
				log.Fatal(err)
			}
			if d := time.Since(t0); rep == 0 || d < best {
				best, bestRes, bestPrep = d, res, prep
			}
		}
		return best, bestRes, bestPrep
	}

	// (a) stuck with the misestimated order: no replanner attached.
	prep, err := opt.Order(lg)
	if err != nil {
		log.Fatal(err)
	}
	misNames := strings.Join(prep.OrderNames(), " ⋈ ")
	noReplan := timePlan(prep.Root, "mis-noreplan")

	// (b) adaptive: replans when the observation crosses the threshold.
	replanned, res, prepB := runReplan(0) // 0 = engine default threshold

	// (c) oracle: the corrected plan prepB converged on, run from cold.
	corrected := timePlan(prepB.Root, "mis-corrected")

	fmt.Printf("\nmisestimated star query (fact %d rows; initial order %s)\n",
		factRows, misNames)
	fmt.Printf("%-28s %10s %10s %12s\n", "variant", "total ms", "replans", "est-err")
	fmt.Printf("%-28s %10.2f %10s %12s\n", "misestimated, no replan", ms(noReplan), "-", "-")
	fmt.Printf("%-28s %10.2f %10d %12.1fx\n", "adaptive (mid-query replan)",
		ms(replanned), res.Stats.Replans, res.Stats.EstCardErr)
	fmt.Printf("%-28s %10.2f %10s %12s  (%s)\n", "corrected order, from cold",
		ms(corrected), "-", "-", strings.Join(prepB.OrderNames(), " ⋈ "))
	fmt.Printf("replan speedup over misestimated order: %.2fx\n",
		float64(noReplan)/float64(replanned))
}
