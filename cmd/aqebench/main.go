// Command aqebench regenerates every table and figure of the paper's
// evaluation (§V): per-experiment workload generation, parameter sweeps,
// baselines, and output in the same rows/series the paper reports.
//
//	aqebench -exp all            # everything at the default scale
//	aqebench -exp fig13 -maxsf 1 # the SF sweep up to SF 1
//
// Experiments: fig2, fig6, fig13, fig14, fig15, table1, table2, regalloc,
// cache, breakers, zonemaps, dict, concurrency, joinorder, native, hybrid,
// service (open-loop wire-protocol load with per-tenant fair-share).
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aqe/internal/codegen"
	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/synth"
	"aqe/internal/tpch"
	"aqe/internal/vm"
	"aqe/internal/volcano"
)

// mustCompile code-generates a plan, panicking on codegen bugs (this is a
// benchmark driver).
func mustCompile(node plan.Node, mem *rt.Memory, name string) *codegen.Query {
	cq, err := codegen.Compile(node, mem, name)
	if err != nil {
		panic(err)
	}
	return cq
}

var (
	expFlag   = flag.String("exp", "all", "experiment: fig2|fig6|fig13|fig14|fig15|table1|table2|regalloc|cache|breakers|zonemaps|dict|concurrency|joinorder|native|hybrid|service|all")
	sfFlag    = flag.Float64("sf", 0.1, "TPC-H scale factor for single-scale experiments")
	maxSfFlag = flag.Float64("maxsf", 0.3, "largest scale factor of the fig13 sweep")
	workers   = flag.Int("workers", 4, "worker threads")
	cacheFlag = flag.Int64("cache", 64<<20, "plan-cache byte budget for the cache experiment (0 disables)")
	durFlag   = flag.Duration("dur", 1500*time.Millisecond, "measurement window per client count in the concurrency experiment")
	qpsFlag   = flag.Float64("qps", 60, "per-tenant open-loop arrival rate for the service experiment")
)

func main() {
	flag.Parse()
	run := func(name string, fn func()) {
		if *expFlag == "all" || *expFlag == name {
			fmt.Printf("==================== %s ====================\n", name)
			fn()
			fmt.Println()
		}
	}
	run("fig2", fig2)
	run("fig6", fig6)
	run("fig13", fig13)
	run("fig14", fig14)
	run("fig15", fig15)
	run("table1", table1)
	run("table2", table2)
	run("regalloc", regalloc)
	run("cache", cacheExp)
	run("breakers", breakers)
	run("zonemaps", zonemaps)
	run("dict", dict)
	run("concurrency", concurrency)
	run("joinorder", joinorder)
	run("native", nativeExp)
	run("hybrid", hybridExp)
	run("service", serviceExp)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

var catCache = map[float64]*storage.Catalog{}

func catalog(sf float64) *storage.Catalog {
	if c, ok := catCache[sf]; ok {
		return c
	}
	c := tpch.Gen(sf)
	catCache[sf] = c
	return c
}

// totalTime is planning + codegen + translation + compilation + execution —
// the quantity Fig. 13 plots — with the paper-calibrated compile latency.
func totalTime(q plan.Query, mode exec.Mode, w int, cost *exec.CostModel) (time.Duration, error) {
	e := exec.New(exec.Options{Workers: w, Mode: mode, Cost: cost})
	t0 := time.Now()
	_, err := e.Run(q)
	return time.Since(t0), err
}

// ---- Fig. 2: compilation vs execution time per mode, TPC-H Q1 ----

func fig2() {
	cat := catalog(*sfFlag)
	fmt.Printf("TPC-H Q1 at SF %.2f, single worker (paper: SF 1)\n", *sfFlag)
	fmt.Printf("%-14s %14s %14s\n", "mode", "compile[ms]", "exec[ms]")
	modes := []struct {
		name string
		mode exec.Mode
		cost *exec.CostModel
	}{
		{"LLVM IR", exec.ModeIRInterp, exec.Native()},
		{"bytecode", exec.ModeBytecode, exec.Native()},
		{"unoptimized", exec.ModeUnoptimized, exec.Paper()},
		{"optimized", exec.ModeOptimized, exec.Paper()},
	}
	for _, m := range modes {
		e := exec.New(exec.Options{Workers: 1, Mode: m.mode, Cost: m.cost})
		res, err := e.Run(tpch.Query(cat, 1))
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		st := res.Stats
		compile := st.Translate + st.Compile
		if m.mode == exec.ModeIRInterp {
			compile = 0 // no translation step at all
		}
		fmt.Printf("%-14s %14.2f %14.2f\n", m.name, ms(compile), ms(st.Exec))
	}
	fmt.Println("(unoptimized/optimized compile includes the paper-calibrated LLVM latency model)")
}

// ---- Fig. 6: compile time vs instruction count ----

func fig6() {
	cat := catalog(0.01)
	fmt.Printf("%-10s %8s %10s %10s %12s %12s %12s\n",
		"query", "instrs", "bc[ms]", "unopt[ms]", "opt[ms]", "unoptLLVM", "optLLVM")
	model := exec.Paper()
	report := func(name string, node plan.Node) {
		mem := rt.NewMemory()
		cqInstrs, bc, unopt, opt := measureCompile(node, mem, name)
		fmt.Printf("%-10s %8d %10.3f %10.3f %12.3f %12.2f %12.2f\n",
			name, cqInstrs, ms(bc), ms(unopt), ms(opt),
			ms(model.UnoptTime(cqInstrs)), ms(model.OptTime(cqInstrs)))
	}
	for qn := 1; qn <= 22; qn++ {
		q := tpch.Query(cat, qn)
		// Compile the first stage's plan (later stages need prior results).
		node := q.Stages[0].Build(nil)
		report(fmt.Sprintf("Q%d", qn), node)
	}
	// Synthetic plans extend the instruction-count axis (the paper uses
	// TPC-DS for this).
	st := synth.Table(1000)
	for _, n := range []int{25, 50, 100, 200, 400} {
		report(fmt.Sprintf("synth%d", n), synth.WideAggPlan(st, n))
	}
}

// measureCompile code-generates a plan and times the three translators.
func measureCompile(node plan.Node, mem *rt.Memory, name string) (int, time.Duration, time.Duration, time.Duration) {
	cq := mustCompile(node, mem, name)
	instrs := cq.Module.NumInstrs()
	var bc, unopt, opt time.Duration
	for _, pl := range cq.Pipelines {
		t0 := time.Now()
		prog, err := vm.Translate(pl.Fn, vm.Options{})
		if err != nil {
			panic(err)
		}
		bc += time.Since(t0)
		t0 = time.Now()
		if _, err := jit.Compile(pl.Fn, jit.Unoptimized, prog); err != nil {
			panic(err)
		}
		unopt += time.Since(t0)
		t0 = time.Now()
		if _, err := jit.Compile(pl.Fn, jit.Optimized, prog); err != nil {
			panic(err)
		}
		opt += time.Since(t0)
	}
	return instrs, bc, unopt, opt
}

// ---- Fig. 13: SF sweep, geometric mean over all 22 queries ----

func fig13() {
	sfs := []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30}
	modes := []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized,
		exec.ModeOptimized, exec.ModeAdaptive}
	fmt.Printf("geometric mean over all 22 TPC-H queries, %d workers, paper cost model\n", *workers)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "SF", "bytecode", "unoptimized", "optimized", "adaptive")
	for _, sf := range sfs {
		if sf > *maxSfFlag {
			break
		}
		cat := catalog(sf)
		fmt.Printf("%-8.2f", sf)
		for _, mode := range modes {
			logSum, n := 0.0, 0
			for qn := 1; qn <= 22; qn++ {
				d, err := totalTime(tpch.Query(cat, qn), mode, *workers, exec.Paper())
				if err != nil {
					fmt.Printf(" ERR(Q%d:%v)", qn, err)
					continue
				}
				logSum += math.Log(ms(d))
				n++
			}
			fmt.Printf(" %12.2f", math.Exp(logSum/float64(n)))
		}
		fmt.Println(" [ms]")
	}
}

// ---- Fig. 14: execution trace of Q11 ----

func fig14() {
	cat := catalog(*sfFlag)
	fmt.Printf("TPC-H Q11 at SF %.2f, 4 workers (paper: SF 1)\n\n", *sfFlag)
	for _, m := range []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized, exec.ModeAdaptive} {
		e := exec.New(exec.Options{Workers: 4, Mode: m, Cost: exec.Paper(),
			Trace: true, MorselSize: 1024})
		// Run both stages and merge their traces onto one axis.
		q := tpch.Query(cat, 11)
		prior := map[string]*storage.Table{}
		var merged *exec.Trace
		t0 := time.Now()
		for i, stg := range q.Stages {
			node := stg.Build(prior)
			res, err := e.RunPlan(node, stg.Name)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if i < len(q.Stages)-1 {
				prior[stg.Name] = res.ToTable(stg.Name)
			}
			if merged == nil {
				merged = res.Trace
			} else {
				merged.Merge(res.Trace)
			}
		}
		fmt.Printf("--- %s: total %.2f ms ---\n", m, ms(time.Since(t0)))
		fmt.Print(merged.Gantt(96))
		fmt.Println()
	}
}

// ---- Fig. 15: compiling very large queries ----

func fig15() {
	st := synth.Table(10000)
	fmt.Printf("%-8s %9s %12s %12s %12s %14s %14s\n",
		"aggs", "instrs", "bc[ms]", "unopt[ms]", "opt[ms]", "unoptLLVM[ms]", "optLLVM[ms]")
	model := exec.Paper()
	for _, n := range []int{10, 50, 100, 200, 400, 800, 1200, 1900} {
		node := synth.WideAggPlan(st, n)
		mem := rt.NewMemory()
		instrs, bc, unopt, opt := measureCompile(node, mem, fmt.Sprintf("wide%d", n))
		fmt.Printf("%-8d %9d %12.2f %12.2f %12.2f %14.1f %14.1f\n",
			n, instrs, ms(bc), ms(unopt), ms(opt),
			ms(model.UnoptTime(instrs)), ms(model.OptTime(instrs)))
	}
	fmt.Println("(optLLVM models the paper's super-linear optimized compilation; bytecode stays linear)")
}

// ---- Table I: planning and compilation times ----

func table1() {
	cat := catalog(*sfFlag)
	fmt.Printf("TPC-H planning/compilation times [ms] at SF %.2f\n", *sfFlag)
	fmt.Printf("%-6s %8s %8s %8s %8s %10s %10s\n",
		"query", "plan", "cdg.", "bc.", "unopt.", "opt.", "instrs")
	type row struct {
		plan, cdg, bc, unopt, opt float64
		instrs                    int
	}
	var maxRow row
	for qn := 1; qn <= 22; qn++ {
		q := tpch.Query(cat, qn)
		t0 := time.Now()
		node := q.Stages[0].Build(nil)
		planT := time.Since(t0)
		mem := rt.NewMemory()
		t0 = time.Now()
		cq := mustCompile(node, mem, q.Name)
		cdgT := time.Since(t0)
		instrs := cq.Module.NumInstrs()
		var bc, unopt, opt time.Duration
		for _, pl := range cq.Pipelines {
			t0 = time.Now()
			prog, _ := vm.Translate(pl.Fn, vm.Options{})
			bc += time.Since(t0)
			t0 = time.Now()
			jit.Compile(pl.Fn, jit.Unoptimized, prog)
			unopt += time.Since(t0)
			t0 = time.Now()
			jit.Compile(pl.Fn, jit.Optimized, prog)
			opt += time.Since(t0)
		}
		model := exec.Paper()
		r := row{ms(planT), ms(cdgT), ms(bc),
			ms(unopt + model.UnoptTime(instrs)), ms(opt + model.OptTime(instrs)), instrs}
		if qn <= 5 {
			fmt.Printf("%-6s %8.3f %8.3f %8.3f %8.1f %10.1f %10d\n",
				fmt.Sprintf("Q%d", qn), r.plan, r.cdg, r.bc, r.unopt, r.opt, r.instrs)
		}
		if r.plan > maxRow.plan {
			maxRow.plan = r.plan
		}
		if r.cdg > maxRow.cdg {
			maxRow.cdg = r.cdg
		}
		if r.bc > maxRow.bc {
			maxRow.bc = r.bc
		}
		if r.unopt > maxRow.unopt {
			maxRow.unopt = r.unopt
		}
		if r.opt > maxRow.opt {
			maxRow.opt = r.opt
		}
	}
	fmt.Printf("%-6s %8.3f %8.3f %8.3f %8.1f %10.1f\n",
		"max", maxRow.plan, maxRow.cdg, maxRow.bc, maxRow.unopt, maxRow.opt)
	fmt.Println("(unopt./opt. include the paper-calibrated LLVM latency model)")
}

// ---- Table II: execution times per engine ----

func table2() {
	cat := catalog(*sfFlag)
	fmt.Printf("TPC-H execution times [ms] at SF %.2f (PG=Volcano stand-in, Monet=column-at-a-time stand-in)\n", *sfFlag)
	fmt.Printf("%-6s %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"query", "PG", "Monet", "bc.1", "unopt.1", "opt.1",
		fmt.Sprintf("bc.%d", *workers), fmt.Sprintf("unopt.%d", *workers),
		fmt.Sprintf("opt.%d", *workers))
	native := exec.Native()
	geo := make(map[string][]float64)
	record := func(k string, v float64) { geo[k] = append(geo[k], v) }
	for qn := 1; qn <= 22; qn++ {
		var cells []float64
		// Baselines run the staged plans directly.
		for _, eng := range []string{"pg", "monet"} {
			t0 := time.Now()
			err := runBaseline(cat, qn, eng)
			d := ms(time.Since(t0))
			if err != nil {
				d = math.NaN()
			}
			cells = append(cells, d)
			record(eng, d)
		}
		for _, w := range []int{1, *workers} {
			for _, mode := range []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized, exec.ModeOptimized} {
				e := exec.New(exec.Options{Workers: w, Mode: mode, Cost: native})
				res, err := e.Run(tpch.Query(cat, qn))
				d := math.NaN()
				if err == nil {
					d = ms(res.Stats.Exec)
				}
				cells = append(cells, d)
				record(fmt.Sprintf("%s.%d", mode, w), d)
			}
		}
		if qn <= 5 {
			fmt.Printf("%-6s %9.1f %9.1f | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
				fmt.Sprintf("Q%d", qn), cells[0], cells[1], cells[2], cells[3],
				cells[4], cells[5], cells[6], cells[7])
		}
	}
	geoMean := func(vs []float64) float64 {
		s, n := 0.0, 0
		for _, v := range vs {
			if !math.IsNaN(v) && v > 0 {
				s += math.Log(v)
				n++
			}
		}
		return math.Exp(s / float64(n))
	}
	fmt.Printf("%-6s %9.1f %9.1f | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n", "geo.m.",
		geoMean(geo["pg"]), geoMean(geo["monet"]),
		geoMean(geo["bytecode.1"]), geoMean(geo["unoptimized.1"]), geoMean(geo["optimized.1"]),
		geoMean(geo[fmt.Sprintf("bytecode.%d", *workers)]),
		geoMean(geo[fmt.Sprintf("unoptimized.%d", *workers)]),
		geoMean(geo[fmt.Sprintf("optimized.%d", *workers)]))
}

// runBaseline executes a staged query on a baseline engine: "pg" is the
// tuple-at-a-time Volcano interpreter; "monet" is the morselized
// vectorized engine pinned single-worker (ModeVector), the
// column-at-a-time stand-in.
func runBaseline(cat *storage.Catalog, qn int, eng string) error {
	if eng == "monet" {
		e := exec.New(exec.Options{Workers: 1, Mode: exec.ModeVector, Cost: exec.Native()})
		_, err := e.Run(tpch.Query(cat, qn))
		return err
	}
	q := tpch.Query(cat, qn)
	prior := map[string]*storage.Table{}
	for i, stg := range q.Stages {
		node := stg.Build(prior)
		var rows [][]aqeDatum
		var err error
		rows, err = volcano.Run(node)
		if err != nil {
			return err
		}
		if i < len(q.Stages)-1 {
			res := &exec.Result{Rows: rows}
			for _, c := range node.Schema() {
				res.Cols = append(res.Cols, c.Name)
				res.Types = append(res.Types, c.T)
			}
			prior[stg.Name] = res.ToTable(stg.Name)
		}
	}
	return nil
}

// ---- §IV-C: register allocation strategies ----

func regalloc() {
	cat := catalog(0.01)
	fmt.Printf("register file size [bytes] per allocation strategy (paper: 36KB / 21KB / 6KB on TPC-DS Q55)\n")
	fmt.Printf("%-10s %9s %10s %10s %10s\n", "query", "instrs", "no-reuse", "window", "loop-aware")
	report := func(name string, node plan.Node) {
		mem := rt.NewMemory()
		cq := mustCompile(node, mem, name)
		sizes := map[vm.Strategy]int{}
		for _, s := range []vm.Strategy{vm.NoReuse, vm.Window, vm.LoopAware} {
			total := 0
			for _, pl := range cq.Pipelines {
				prog, err := vm.Translate(pl.Fn, vm.Options{Strategy: s, WindowSize: 8})
				if err != nil {
					panic(err)
				}
				if prog.RegFileBytes() > total {
					total = prog.RegFileBytes()
				}
			}
			sizes[s] = total
		}
		fmt.Printf("%-10s %9d %10d %10d %10d\n", name, cq.Module.NumInstrs(),
			sizes[vm.NoReuse], sizes[vm.Window], sizes[vm.LoopAware])
	}
	for _, qn := range []int{1, 5, 9, 21} {
		report(fmt.Sprintf("Q%d", qn), tpch.Query(cat, qn).Stages[0].Build(nil))
	}
	st := synth.Table(100)
	for _, n := range []int{100, 400} {
		report(fmt.Sprintf("synth%d", n), synth.WideAggPlan(st, n))
	}
}

// ---- cache: cold vs warm repeated-query latency through the plan cache ----

// cacheExp models the interactive / dashboard workload the compilation cache
// targets: the same query text arrives again and again. Each query runs once
// cold (translate + compile paid) and once warm (served from the
// fingerprint-keyed cache) on the same engine; the cost model is the
// paper-calibrated LLVM latency, so the warm column shows exactly the
// compilation wait the cache removes.
func cacheExp() {
	cat := catalog(*sfFlag)
	fmt.Printf("repeated TPC-H queries at SF %.2f, %d workers, cache budget %d KiB\n",
		*sfFlag, *workers, *cacheFlag>>10)
	queries := []int{1, 3, 5, 6, 12, 14, 19}
	for _, mode := range []exec.Mode{exec.ModeOptimized, exec.ModeAdaptive} {
		e := exec.New(exec.Options{Workers: *workers, Mode: mode,
			Cost: exec.Paper(), CacheBytes: *cacheFlag})
		fmt.Printf("--- %s ---\n", mode)
		fmt.Printf("%-6s %12s %12s %12s %12s %12s %12s %12s %12s\n",
			"query", "c.trans[ms]", "c.comp[ms]", "c.exec[ms]", "c.total[ms]",
			"w.trans[ms]", "w.comp[ms]", "w.exec[ms]", "w.total[ms]")
		var coldTot, warmTot time.Duration
		for _, qn := range queries {
			q := tpch.Query(cat, qn)
			t0 := time.Now()
			cold, err := e.Run(q)
			coldD := time.Since(t0)
			if err != nil {
				fmt.Printf("Q%d: %v\n", qn, err)
				continue
			}
			t0 = time.Now()
			warm, err := e.Run(q)
			warmD := time.Since(t0)
			if err != nil {
				fmt.Printf("Q%d warm: %v\n", qn, err)
				continue
			}
			if !warm.Stats.CacheHit {
				fmt.Printf("Q%d: warm run missed the cache!\n", qn)
			}
			coldTot += coldD
			warmTot += warmD
			fmt.Printf("%-6s %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
				fmt.Sprintf("Q%d", qn),
				ms(cold.Stats.Translate), ms(cold.Stats.Compile), ms(cold.Stats.Exec), ms(coldD),
				ms(warm.Stats.Translate), ms(warm.Stats.Compile), ms(warm.Stats.Exec), ms(warmD))
		}
		st := e.CacheStats()
		fmt.Printf("total cold %.2f ms, warm %.2f ms (%.1fx); cache: %d entries, %d KiB/%d KiB, %d hits, %d misses, %d evictions\n",
			ms(coldTot), ms(warmTot), ms(coldTot)/ms(warmTot),
			st.Entries, st.Bytes>>10, st.Budget>>10, st.Hits, st.Misses, st.Evictions)
	}
	fmt.Println("(cold pays translation plus the paper-calibrated LLVM latency; warm starts in the best cached tier)")
}

// ---- breakers: parallel pipeline-breaker finalization + Bloom filters ----

// breakers measures the two halves of the parallel-breaker work: the wall
// time spent inside join/aggregation finalization as the worker count grows
// (serial vs hash-range partitioned), and the end-to-end effect of the
// Bloom-filtered probes on join-heavy queries. Native costs, optimized
// mode: no simulated compile latency pollutes the barrier measurement.
func breakers() {
	cat := catalog(*sfFlag)
	native := exec.Native()
	const reps = 3

	// Finalize wall time over breaker-heavy queries, summed per config;
	// best of reps runs to damp scheduler noise.
	breakerQs := []int{3, 9, 13, 18, 21}
	measure := func(w int, serial bool) time.Duration {
		best := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			var tot time.Duration
			for _, qn := range breakerQs {
				e := exec.New(exec.Options{Workers: w, Mode: exec.ModeOptimized,
					Cost: native, SerialFinalize: serial})
				res, err := e.Run(tpch.Query(cat, qn))
				if err != nil {
					panic(fmt.Sprintf("Q%d: %v", qn, err))
				}
				tot += res.Stats.Finalize
			}
			if tot < best {
				best = tot
			}
		}
		return best
	}
	fmt.Printf("breaker finalize wall time at SF %.2f (sum over Q3,9,13,18,21; optimized mode, native costs, best of %d)\n",
		*sfFlag, reps)
	fmt.Printf("%-8s %12s %14s %9s\n", "workers", "serial[ms]", "parallel[ms]", "speedup")
	for _, w := range []int{1, 2, 4, 8} {
		s := measure(w, true)
		p := measure(w, false)
		fmt.Printf("%-8d %12.2f %14.2f %8.2fx\n", w, ms(s), ms(p), ms(s)/ms(p))
	}

	// Bloom filter on/off, end-to-end execution time of probe-heavy queries.
	probeQs := []int{5, 9, 18, 21}
	fmt.Printf("\nBloom-filtered probes at SF %.2f, %d workers (exec time, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-6s %12s %12s %9s %12s %12s %7s\n",
		"query", "off[ms]", "on[ms]", "speedup", "hits", "skips", "skip%")
	for _, qn := range probeQs {
		exe := func(noFilter bool) time.Duration {
			best := time.Duration(math.MaxInt64)
			for r := 0; r < reps; r++ {
				e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
					Cost: native, NoJoinFilter: noFilter})
				res, err := e.Run(tpch.Query(cat, qn))
				if err != nil {
					panic(fmt.Sprintf("Q%d: %v", qn, err))
				}
				if res.Stats.Exec < best {
					best = res.Stats.Exec
				}
			}
			return best
		}
		off := exe(true)
		on := exe(false)
		// A separate counting pass: the hit/skip counters cost per-probe
		// work, so they stay out of the timed runs.
		e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
			Cost: native, FilterStats: true})
		res, err := e.Run(tpch.Query(cat, qn))
		if err != nil {
			panic(fmt.Sprintf("Q%d: %v", qn, err))
		}
		hits, skips := res.Stats.FilterHits, res.Stats.FilterSkips
		pct := 0.0
		if hits+skips > 0 {
			pct = 100 * float64(skips) / float64(hits+skips)
		}
		fmt.Printf("%-6s %12.2f %12.2f %8.2fx %12d %12d %6.1f%%\n",
			fmt.Sprintf("Q%d", qn), ms(off), ms(on), ms(off)/ms(on), hits, skips, pct)
	}
	fmt.Println("(skip% = probes whose chain walk the filter eliminated)")

	// Out-of-cache probe: the filter's target regime is a build table whose
	// bucket array misses the LLC while the 4x-denser filter still fits.
	// TPC-H at small SF keeps every bucket array cache-resident, where a
	// skipped bucket load saves nothing; this workload sizes the build side
	// past the LLC (64M buckets = 512 MB, filter = 128 MB) with ~90% of
	// probes missing.
	const nBuild = 20_000_000
	const nProbe = 40_000_000
	bk := storage.NewColumn("k", storage.Int64)
	for i := 0; i < nBuild; i++ {
		bk.AppendInt64(int64(i))
	}
	bt := storage.NewTable("bigbuild", bk)
	pk := storage.NewColumn("p", storage.Int64)
	for i := 0; i < nProbe; i++ {
		pk.AppendInt64(int64(uint64(i) * 0x9E3779B97F4A7C15 % (10 * nBuild)))
	}
	pt := storage.NewTable("bigprobe", pk)
	mkPlan := func() plan.Node {
		b := plan.NewScan(bt, "k")
		p := plan.NewScan(pt, "p")
		j := plan.NewJoin(plan.Inner, b, p,
			[]expr.Expr{plan.C(b.Schema(), "k")},
			[]expr.Expr{plan.C(p.Schema(), "p")}, nil)
		return plan.NewGroupBy(j, nil, nil,
			[]plan.AggExpr{{Func: plan.CountStar, Name: "n"}})
	}
	bigExe := func(noFilter, stats bool) *exec.Result {
		best := (*exec.Result)(nil)
		for r := 0; r < 2; r++ {
			e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
				Cost: native, NoJoinFilter: noFilter, FilterStats: stats})
			res, err := e.RunPlan(mkPlan(), "bigprobe")
			if err != nil {
				panic(err)
			}
			if best == nil || res.Stats.Exec < best.Stats.Exec {
				best = res
			}
		}
		return best
	}
	fmt.Printf("\nout-of-cache probe (%dM build keys, %dM probes, ~90%% miss; optimized mode, %d workers, best of 2)\n",
		nBuild/1000000, nProbe/1000000, *workers)
	boff := bigExe(true, false)
	bon := bigExe(false, false)
	bst := bigExe(false, true)
	fmt.Printf("  filter off: %8.1f ms   filter on: %8.1f ms   speedup: %.2fx   skip%%: %.1f\n",
		ms(boff.Stats.Exec), ms(bon.Stats.Exec), ms(boff.Stats.Exec)/ms(bon.Stats.Exec),
		100*float64(bst.Stats.FilterSkips)/float64(bst.Stats.FilterHits+bst.Stats.FilterSkips))
}

// ---- zonemaps: zone-map morsel pruning on/off + block-size sweep ----

// zonemaps measures what data skipping buys on top of compilation: all 22
// queries with pruning on vs off (optimized mode, native costs — scan
// throughput is the quantity under test) plus the per-query skip rate,
// then a block-size sweep on Q6, the classic zone-map query (three range
// predicates on a date-clustered fact table).
func zonemaps() {
	cat := catalog(*sfFlag)
	native := exec.Native()
	const reps = 3
	exe := func(qn int, off bool) *exec.Result {
		var best *exec.Result
		for r := 0; r < reps; r++ {
			e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
				Cost: native, NoZoneMaps: off})
			res, err := e.Run(tpch.Query(cat, qn))
			if err != nil {
				panic(fmt.Sprintf("Q%d: %v", qn, err))
			}
			if best == nil || res.Stats.Exec < best.Stats.Exec {
				best = res
			}
		}
		return best
	}
	fmt.Printf("zone-map pruning at SF %.2f, %d workers (optimized mode, native costs, exec time, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-6s %10s %10s %9s %12s %12s %7s\n",
		"query", "off[ms]", "on[ms]", "speedup", "pruned", "prunable", "skip%")
	for qn := 1; qn <= 22; qn++ {
		off := exe(qn, true)
		on := exe(qn, false)
		st := on.Stats
		pct := 0.0
		if st.PrunableTuples > 0 {
			pct = 100 * float64(st.TuplesPruned) / float64(st.PrunableTuples)
		}
		fmt.Printf("%-6s %10.2f %10.2f %8.2fx %12d %12d %6.1f%%\n",
			fmt.Sprintf("Q%d", qn), ms(off.Stats.Exec), ms(on.Stats.Exec),
			ms(off.Stats.Exec)/ms(on.Stats.Exec),
			st.TuplesPruned, st.PrunableTuples, pct)
	}
	fmt.Println("(skip% = pruned tuples / source tuples of scans carrying a prune descriptor; multi-stage queries report their final stage)")

	// Block-size sweep on Q6: smaller blocks prune at finer granularity but
	// cost more statistics; 64k matches the largest morsel.
	fmt.Printf("\nQ6 block-size sweep (same setup)\n")
	fmt.Printf("%-10s %10s %12s %12s %7s\n", "blockRows", "on[ms]", "pruned", "prunable", "skip%")
	for _, br := range []int{4096, 16384, 65536, 262144} {
		cat.BuildZoneMaps(br)
		on := exe(6, false)
		st := on.Stats
		pct := 0.0
		if st.PrunableTuples > 0 {
			pct = 100 * float64(st.TuplesPruned) / float64(st.PrunableTuples)
		}
		fmt.Printf("%-10d %10.2f %12d %12d %6.1f%%\n",
			br, ms(on.Stats.Exec), st.TuplesPruned, st.PrunableTuples, pct)
	}
	// The catalog is shared across experiments: restore the default maps.
	cat.BuildZoneMaps(storage.DefaultZoneBlockRows)
}

// ---- dict: order-preserving string dictionaries on/off ----

// dict measures what the dictionary rewrites buy: all 22 TPC-H queries
// with NoDict on vs off (optimized mode, native costs — string predicate
// and hashing throughput is the quantity under test) with per-query
// rewrite counts and string zone-map skips, then a synthetic
// high-cardinality string workload whose clustered key makes code-valued
// zone maps prune.
func dict() {
	cat := catalog(*sfFlag)
	native := exec.Native()
	const reps = 3
	exe := func(qn int, off bool) *exec.Result {
		var best *exec.Result
		for r := 0; r < reps; r++ {
			e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
				Cost: native, NoDict: off})
			res, err := e.Run(tpch.Query(cat, qn))
			if err != nil {
				panic(fmt.Sprintf("Q%d: %v", qn, err))
			}
			if best == nil || res.Stats.Exec < best.Stats.Exec {
				best = res
			}
		}
		return best
	}
	fmt.Printf("string dictionaries at SF %.2f, %d workers (optimized mode, native costs, exec time, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-6s %10s %10s %9s %9s %9s %10s %7s\n",
		"query", "off[ms]", "on[ms]", "speedup", "rewrites", "strblk", "pruned", "skip%")
	for qn := 1; qn <= 22; qn++ {
		off := exe(qn, true)
		on := exe(qn, false)
		st := on.Stats
		pct := 0.0
		if st.PrunableTuples > 0 {
			pct = 100 * float64(st.TuplesPruned) / float64(st.PrunableTuples)
		}
		fmt.Printf("%-6s %10.2f %10.2f %8.2fx %9d %9d %10d %6.1f%%\n",
			fmt.Sprintf("Q%d", qn), ms(off.Stats.Exec), ms(on.Stats.Exec),
			ms(off.Stats.Exec)/ms(on.Stats.Exec),
			st.DictRewrites, st.StringBlocksPruned, st.TuplesPruned, pct)
	}
	fmt.Println("(rewrites/strblk/skip% report the final stage of multi-stage queries)")

	// Synthetic high-cardinality string workload: a near-sorted key column
	// (range predicate → tight code zone maps) plus a low-cardinality
	// category LIKE and a group-by on the category.
	rows := int(*sfFlag * 6_000_000)
	if rows < 50_000 {
		rows = 50_000
	}
	st := synth.StringTable(rows)
	lo := fmt.Sprintf("sku-%08d", rows*4*45/100)
	hi := fmt.Sprintf("sku-%08d", rows*4*55/100)
	synExe := func(off bool) *exec.Result {
		var best *exec.Result
		for r := 0; r < reps; r++ {
			e := exec.New(exec.Options{Workers: *workers, Mode: exec.ModeOptimized,
				Cost: native, NoDict: off})
			res, err := e.RunPlan(synth.StringAggPlan(st, lo, hi), "strsynth")
			if err != nil {
				panic(err)
			}
			if best == nil || res.Stats.Exec < best.Stats.Exec {
				best = res
			}
		}
		return best
	}
	off := synExe(true)
	on := synExe(false)
	s := on.Stats
	pct := 0.0
	if s.PrunableTuples > 0 {
		pct = 100 * float64(s.TuplesPruned) / float64(s.PrunableTuples)
	}
	fmt.Printf("\nsynthetic string table (%d rows, ~%d distinct keys, 10%% key range + category LIKE, group by category)\n",
		rows, rows)
	fmt.Printf("  dict off: %8.2f ms   dict on: %8.2f ms   speedup: %.2fx   rewrites: %d   string blocks pruned: %d   skip%%: %.1f\n",
		ms(off.Stats.Exec), ms(on.Stats.Exec), ms(off.Stats.Exec)/ms(on.Stats.Exec),
		s.DictRewrites, s.StringBlocksPruned, pct)
}

type aqeDatum = expr.Datum

// ---- concurrency: throughput and latency vs concurrent clients ----

// concurrency drives one shared engine with 1..16 closed-loop clients
// cycling through a TPC-H mix and reports throughput, speedup over a
// single client, latency percentiles, and admission-queue behaviour.
//
// The headline series uses optimized mode with the paper's compile-cost
// model and no plan cache, so every query carries its modeled LLVM
// compile latency: that latency is pure waiting, and overlapping it
// across queries is exactly what a shared scheduler buys even on few
// cores. The mix is the short analytic queries whose compile time
// rivals their execution time — the regime §II calls out, where
// compilation dominates end-to-end latency. The second series
// (adaptive, native costs, cache on) shows the steady-state CPU-bound
// regime where throughput is capped by the core count.
func concurrency() {
	cat := catalog(*sfFlag)
	qns := []int{2, 14, 15, 16, 22}
	clientCounts := []int{1, 2, 4, 8, 16}
	const admitCap = 8

	series := []struct {
		name  string
		mode  exec.Mode
		cost  *exec.CostModel
		cache int64
	}{
		{"optimized+paper-compile, cache off", exec.ModeOptimized, exec.Paper(), -1},
		{"adaptive+native, cache on", exec.ModeAdaptive, exec.Native(), 64 << 20},
	}
	for _, s := range series {
		fmt.Printf("%s at SF %.2f, %v per run, pool %d, admission cap %d, queries %v\n",
			s.name, *sfFlag, *durFlag, *workers, admitCap, qns)
		fmt.Printf("%-8s %9s %9s %11s %11s %11s %11s %8s\n",
			"clients", "QPS", "speedup", "mean[ms]", "p50[ms]", "p95[ms]", "wait[ms]", "queued")
		var base float64
		for _, nc := range clientCounts {
			cb := s.cache
			if cb < 0 {
				cb = 0
			}
			e := exec.New(exec.Options{Workers: 2, PoolWorkers: *workers,
				MaxConcurrent: admitCap, Mode: s.mode, Cost: s.cost, CacheBytes: cb})
			var mu sync.Mutex
			var lats []time.Duration
			var measuring atomic.Bool
			var done atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < nc; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						qn := qns[(c+i)%len(qns)]
						t0 := time.Now()
						if _, err := e.Run(tpch.Query(cat, qn)); err != nil {
							panic(err)
						}
						lat := time.Since(t0)
						if measuring.Load() {
							mu.Lock()
							lats = append(lats, lat)
							mu.Unlock()
							done.Add(1)
						}
					}
				}(c)
			}
			// Warm up (catalogs, code caches, steady client overlap), then
			// count only completions inside the measurement window.
			time.Sleep(*durFlag / 3)
			measuring.Store(true)
			time.Sleep(*durFlag)
			measuring.Store(false)
			n64 := done.Load()
			close(stop)
			wg.Wait()

			n := int(n64)
			if n == 0 {
				fmt.Printf("%-8d (no query finished within %v)\n", nc, *durFlag)
				continue
			}
			mu.Lock()
			lats = lats[:n]
			mu.Unlock()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			var sum time.Duration
			for _, l := range lats {
				sum += l
			}
			qps := float64(n) / durFlag.Seconds()
			if nc == 1 {
				base = qps
			}
			st := e.SchedStats()
			avgWait := time.Duration(0)
			if st.Queued > 0 {
				avgWait = st.WaitTime / time.Duration(st.Queued)
			}
			fmt.Printf("%-8d %9.1f %8.2fx %11.2f %11.2f %11.2f %11.2f %8d\n",
				nc, qps, qps/base, ms(sum/time.Duration(n)), ms(lats[n/2]),
				ms(lats[n*95/100]), ms(avgWait), st.Queued)
		}
		fmt.Println()
	}
	fmt.Println("(closed loop: every client always has one query in flight; speedup is QPS vs 1 client)")
}
