package main

import (
	"fmt"

	"aqe/internal/exec"
	"aqe/internal/tpch"
)

// ---- hybrid: per-pipeline engine selection (vectorized vs compiled) ----

// hybridExp measures the three engine configurations of the §III-C
// engine-selection extension on the join-heavy TPC-H trio and the two
// synthetic regimes:
//
//   - forced-compiled: ModeOptimized — every pipeline runs the optimized
//     closure tier (the strongest portable compiled baseline).
//   - forced-vector: ModeVector — every kernel-compilable pipeline runs
//     the vectorized engine; the rest fall back to optimized closures.
//   - auto: ModeAdaptive — the controller starts in bytecode and promotes
//     each pipeline to whichever engine its observed morsel rates favour.
//
// The claims under test: on hash-dense pipelines (hashwalk, the trio's
// probe pipelines) the vectorized engine beats the compiled tiers, on
// compute-dense pipelines (arith) the compiled tiers win, and auto lands
// within a few percent of the best forced configuration on both — without
// being told which regime it is in.
func hybridExp() {
	cat := catalog(*sfFlag)
	const reps = 3

	type workload struct {
		name string
		run  func(e *exec.Engine) (*exec.Result, error)
	}
	var wls []workload
	for _, qn := range []int{3, 5, 10} {
		q := tpch.Query(cat, qn)
		wls = append(wls, workload{name: fmt.Sprintf("Q%d", qn),
			run: func(e *exec.Engine) (*exec.Result, error) { return e.Run(q) }})
	}
	hwNode, _ := hashWalkPlan(*sfFlag)
	wls = append(wls, workload{name: "hashwalk",
		run: func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(hwNode, "hashwalk") }})
	arNode, _ := arithPlan(*sfFlag)
	wls = append(wls, workload{name: "arith",
		run: func(e *exec.Engine) (*exec.Result, error) { return e.RunPlan(arNode, "arith") }})

	configs := []struct {
		name string
		opts exec.Options
	}{
		{"compiled", exec.Options{Workers: *workers, Mode: exec.ModeOptimized, Cost: exec.Native(),
			CacheBytes: 64 << 20}},
		{"vector", exec.Options{Workers: *workers, Mode: exec.ModeVector, Cost: exec.Native(),
			CacheBytes: 64 << 20}},
		{"auto", exec.Options{Workers: *workers, Mode: exec.ModeAdaptive, Cost: exec.Native(),
			CacheBytes: 64 << 20}},
	}

	// Engines persist across reps: the forced modes compile (or stage
	// kernels) up front, so the adaptive engine gets its plan-cache warm
	// start too — the steady-state regime the within-a-few-percent claim
	// is about. Rep 1 is the cold adaptation run; best-of keeps a warm one.
	fmt.Printf("engine selection at SF %.2f, %d workers (one engine per config, best of %d)\n",
		*sfFlag, *workers, reps)
	fmt.Printf("%-10s %12s %12s %12s %10s %8s %8s %9s\n",
		"workload", "compiled[ms]", "vector[ms]", "auto[ms]", "auto/best", "v.mors", "switch", "vec/comp")
	for _, wl := range wls {
		var cells []float64
		var auto *exec.Result
		for _, cfg := range configs {
			e := exec.New(cfg.opts)
			best := (*exec.Result)(nil)
			for r := 0; r < reps+1; r++ {
				res, err := wl.run(e)
				if err != nil {
					panic(fmt.Sprintf("%s %s: %v", wl.name, cfg.name, err))
				}
				if best == nil || res.Stats.Exec < best.Stats.Exec {
					best = res
				}
			}
			cells = append(cells, ms(best.Stats.Exec))
			if cfg.name == "auto" {
				auto = best
			}
		}
		bestForced := cells[0]
		if cells[1] < bestForced {
			bestForced = cells[1]
		}
		fmt.Printf("%-10s %12.2f %12.2f %12.2f %9.2fx %8d %8d %8.2fx\n",
			wl.name, cells[0], cells[1], cells[2], cells[2]/bestForced,
			auto.Stats.VectorMorsels, auto.Stats.EngineSwitches, cells[0]/cells[1])
	}
	fmt.Println("(auto/best: adaptive exec time over the better forced engine — the §III-C")
	fmt.Println(" claim is that it stays near 1.0x in both regimes; vec/comp > 1 means the")
	fmt.Println(" vectorized engine won the workload, < 1 the compiled tiers did)")
}
