// Command aqeserver serves a TPC-H-loaded aqe database over HTTP/JSON
// (NDJSON streaming) and the length-prefixed binary protocol.
//
//	aqeserver -sf 0.05 -addr :8480 -binaddr :8481
//	curl -s localhost:8480/query -d '{"sql":"SELECT count(*) FROM lineitem"}'
//
// SIGINT/SIGTERM drain gracefully: in-flight queries finish (bounded by
// -draintimeout), new requests are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aqe"
	"aqe/internal/server"
)

var (
	sfFlag      = flag.Float64("sf", 0.05, "TPC-H scale factor to load")
	addrFlag    = flag.String("addr", ":8480", "HTTP listen address ('' disables)")
	binAddrFlag = flag.String("binaddr", ":8481", "binary-protocol listen address ('' disables)")
	modeFlag    = flag.String("mode", "adaptive", "execution mode: adaptive|bytecode|optimized|native|vector")
	workersFlag = flag.Int("workers", 0, "worker threads (0 = default)")
	maxqFlag    = flag.Int("maxq", 8, "max concurrent queries")
	perTenFlag  = flag.Int("max-per-tenant", 0, "max concurrent queries per tenant (0 = unlimited)")
	weightsFlag = flag.String("weights", "", "fair-share weights, e.g. gold=4,silver=2")
	timeoutFlag = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	drainFlag   = flag.Duration("draintimeout", 30*time.Second, "graceful-drain bound on shutdown")
	cacheFlag   = flag.Int64("cache", 64<<20, "plan-cache byte budget")
	readyFlag   = flag.Bool("ready-line", false, "print one READY line with the bound addresses")
	chunkFlag   = flag.Int("chunk", 256, "rows per streamed chunk")
)

func mode(name string) aqe.Mode {
	switch name {
	case "bytecode":
		return aqe.ModeBytecode
	case "optimized":
		return aqe.ModeOptimized
	case "native":
		return aqe.ModeNative
	case "vector":
		return aqe.ModeVector
	case "adaptive", "":
		return aqe.ModeAdaptive
	}
	log.Fatalf("unknown -mode %q", name)
	return 0
}

func parseWeights(s string) map[string]int {
	if s == "" {
		return nil
	}
	w := map[string]int{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n < 1 {
			log.Fatalf("bad -weights entry %q (want tenant=N)", kv)
		}
		w[k] = n
	}
	return w
}

func main() {
	flag.Parse()
	db := aqe.Open(aqe.Options{
		Mode:                   mode(*modeFlag),
		Workers:                *workersFlag,
		MaxConcurrent:          *maxqFlag,
		MaxConcurrentPerTenant: *perTenFlag,
		TenantWeights:          parseWeights(*weightsFlag),
		CacheBytes:             *cacheFlag,
	})
	log.Printf("loading TPC-H at SF %g ...", *sfFlag)
	t0 := time.Now()
	db.LoadTPCH(*sfFlag)
	log.Printf("loaded in %v", time.Since(t0).Round(time.Millisecond))

	srv := server.New(server.Options{
		DB:             db,
		DefaultTimeout: *timeoutFlag,
		ChunkRows:      *chunkFlag,
	})

	errc := make(chan error, 2)
	var httpAddr, binAddr string
	if *addrFlag != "" {
		ln, err := net.Listen("tcp", *addrFlag)
		if err != nil {
			log.Fatalf("http listen: %v", err)
		}
		httpAddr = ln.Addr().String()
		log.Printf("http on %s", httpAddr)
		go func() { errc <- srv.ServeHTTP(ln) }()
	}
	if *binAddrFlag != "" {
		ln, err := net.Listen("tcp", *binAddrFlag)
		if err != nil {
			log.Fatalf("binary listen: %v", err)
		}
		binAddr = ln.Addr().String()
		log.Printf("binary on %s", binAddr)
		go func() { errc <- srv.ServeBinary(ln) }()
	}
	if httpAddr == "" && binAddr == "" {
		log.Fatal("both -addr and -binaddr disabled; nothing to serve")
	}
	if *readyFlag {
		fmt.Printf("READY http=%s bin=%s\n", httpAddr, binAddr)
		os.Stdout.Sync()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining (up to %v) ...", s, *drainFlag)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
			os.Exit(1)
		}
		log.Print("drained")
	case err := <-errc:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
}
