package aqe

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestPublicAPI(t *testing.T) {
	db := Open(Options{Workers: 2, Mode: ModeAdaptive})
	db.LoadTPCH(0.003)

	res, err := db.ExecSQL(`SELECT l_returnflag, count(*) AS n
		FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("returnflags = %d, want 3", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].I
	}
	if total != int64(db.Catalog().Table("lineitem").Rows()) {
		t.Errorf("counts sum to %d", total)
	}

	out := FormatRows(res, 2)
	if !strings.Contains(out, "l_returnflag") || !strings.Contains(out, "more rows") {
		t.Errorf("FormatRows output unexpected:\n%s", out)
	}
}

func TestPublicAPITPCHPlans(t *testing.T) {
	db := Open(Options{Workers: 2, Mode: ModeBytecode})
	db.LoadTPCH(0.003)
	for _, qn := range []int{1, 6, 13} {
		res, err := db.Exec(db.TPCHQuery(qn))
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("Q%d returned no rows", qn)
		}
	}
}

func TestPublicAPIModes(t *testing.T) {
	const q = `SELECT sum(l_extendedprice * l_discount) AS rev FROM lineitem
		WHERE l_discount BETWEEN 0.05 AND 0.07`
	var want int64
	for i, m := range []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeNative} {
		db := Open(Options{Workers: 2, Mode: m, Cost: NativeCosts()})
		db.LoadTPCH(0.003)
		res, err := db.ExecSQL(q)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if i == 0 {
			want = res.Rows[0][0].I
		} else if res.Rows[0][0].I != want {
			t.Errorf("%v: revenue %d, want %d", m, res.Rows[0][0].I, want)
		}
	}
}

func TestPublicAPIContext(t *testing.T) {
	db := Open(Options{Workers: 1, PoolWorkers: 1, MaxConcurrent: 2})
	db.LoadTPCH(0.003)

	res, err := db.ExecSQLCtx(context.Background(),
		`SELECT count(*) FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cancelled || res.Stats.Queued {
		t.Errorf("uncontended query reported cancelled=%v queued=%v",
			res.Stats.Cancelled, res.Stats.Queued)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = db.ExecCtx(ctx, db.TPCHQuery(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err=%v, want context.Canceled", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set on cancelled query")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := Open(Options{})
	db.LoadTPCH(0.002)
	if _, err := db.ExecSQL("SELECT nosuch FROM lineitem"); err == nil {
		t.Error("expected unknown column error")
	}
	if _, err := db.ExecSQL("this is not sql"); err == nil {
		t.Error("expected parse error")
	}
}
