// Quickstart: open a database, load TPC-H data, run SQL and a TPC-H plan.
package main

import (
	"fmt"
	"log"

	"aqe"
)

func main() {
	db := aqe.Open(aqe.Options{Workers: 4, Mode: aqe.ModeAdaptive})
	db.LoadTPCH(0.01) // ~10 MB

	// SQL subset: filters, joins, aggregation, ordering.
	res, err := db.ExecSQL(`
		SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS total
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'
		GROUP BY l_returnflag
		ORDER BY l_returnflag`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- pricing summary (SQL) --")
	fmt.Print(aqe.FormatRows(res, 10))
	fmt.Printf("executed %d pipelines in %v (codegen %v, bytecode %v)\n\n",
		res.Stats.Pipelines, res.Stats.Exec, res.Stats.Codegen, res.Stats.Translate)

	// The built-in TPC-H plans: Q6, the revenue-forecast query.
	res, err = db.Exec(db.TPCHQuery(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- TPC-H Q6 --")
	fmt.Print(aqe.FormatRows(res, 5))
	for i, lvl := range res.Stats.FinalLevels {
		fmt.Printf("pipeline %d finished in tier: %v\n", i, lvl)
	}
}
