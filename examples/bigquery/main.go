// bigquery reproduces §V-E: machine-generated queries with hundreds of
// aggregate expressions, where optimized compilation's super-linear cost
// explodes while bytecode translation stays linear — "fast translation
// into bytecode is indispensable for these workloads".
package main

import (
	"fmt"
	"log"

	"aqe"
	"aqe/internal/exec"
	"aqe/internal/synth"
)

func main() {
	table := synth.Table(50000)
	eng := exec.New(exec.Options{Workers: 4, Mode: exec.ModeAdaptive, Cost: exec.Paper()})

	fmt.Println("machine-generated wide-aggregate queries (paper §V-E), adaptive execution:")
	for _, nAggs := range []int{10, 100, 400, 1000} {
		node := synth.WideAggPlan(table, nAggs)
		res, err := eng.RunPlan(node, fmt.Sprintf("wide-%d", nAggs))
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("  %4d aggregates: %6d IR instructions, bytecode in %8.2f ms, total %8.1f ms, %d groups\n",
			nAggs, st.Instrs, st.Translate.Seconds()*1e3, st.Total.Seconds()*1e3, len(res.Rows))
	}
	fmt.Println("\nwith the paper's LLVM cost model, optimized compilation of the largest query")
	model := exec.Paper()
	fmt.Printf("would take ~%.1f s up front; adaptive execution starts immediately and only\n",
		model.OptTime(90000).Seconds())
	fmt.Println("compiles a pipeline when its extrapolated remaining work justifies it.")
	_ = aqe.ModeAdaptive
}
