// adaptive visualizes the paper's Fig. 14: the per-morsel execution trace
// of TPC-H Q11, showing all workers starting in the bytecode interpreter,
// the controller deciding to compile the two expensive partsupp pipelines
// in the background, and every worker switching tiers at the next morsel.
package main

import (
	"fmt"
	"log"

	"aqe"
	"aqe/internal/exec"
	"aqe/internal/storage"
	"aqe/internal/tpch"
)

func main() {
	cat := tpch.Gen(0.1)
	eng := exec.New(exec.Options{Workers: 4, Mode: exec.ModeAdaptive,
		Cost: exec.Paper(), Trace: true, MorselSize: 1024})

	q := tpch.Query(cat, 11)
	prior := map[string]*storage.Table{}
	var merged *exec.Trace
	for i, stg := range q.Stages {
		node := stg.Build(prior)
		res, err := eng.RunPlan(node, stg.Name)
		if err != nil {
			log.Fatal(err)
		}
		if i < len(q.Stages)-1 {
			prior[stg.Name] = res.ToTable(stg.Name)
		}
		if merged == nil {
			merged = res.Trace
		} else {
			merged.Merge(res.Trace)
		}
		for pi, lvl := range res.Stats.FinalLevels {
			fmt.Printf("stage %-8s pipeline %d finished in tier %v (compilations launched: %d)\n",
				stg.Name, pi, lvl, res.Stats.Compilations)
		}
	}
	fmt.Println("\nexecution trace (a/b/c… = pipelines, C = background compilation):")
	fmt.Print(merged.Gantt(100))
	_ = aqe.ModeAdaptive
}
