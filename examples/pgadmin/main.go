// pgadmin reproduces the paper's §I motivation: interactive tools fire
// dozens of small metadata-style queries where compilation latency
// dominates execution. With the paper-calibrated LLVM cost model, the
// static compiling modes waste almost all their time compiling, while
// adaptive execution answers from the bytecode interpreter immediately.
package main

import (
	"fmt"
	"log"
	"time"

	"aqe"
)

// metadataQueries mimics a tool inspecting the catalog: joins over the
// small dimension tables with selective filters (the paper's pg_inherits/
// pg_class example touches only a handful of tuples).
var metadataQueries = []string{
	`SELECT n_name, r_name FROM nation, region
	 WHERE n_regionkey = r_regionkey ORDER BY n_name`,
	`SELECT r_name, count(*) AS nations FROM region, nation
	 WHERE r_regionkey = n_regionkey GROUP BY r_name ORDER BY r_name`,
	`SELECT s_name, n_name FROM supplier, nation
	 WHERE s_nationkey = n_nationkey AND s_acctbal > 9900.0 ORDER BY s_name LIMIT 10`,
	`SELECT n_name, count(*) AS suppliers FROM nation, supplier
	 WHERE n_nationkey = s_nationkey GROUP BY n_name ORDER BY suppliers DESC LIMIT 5`,
	`SELECT c_mktsegment, count(*) AS customers, avg(c_acctbal) AS bal
	 FROM customer GROUP BY c_mktsegment ORDER BY c_mktsegment`,
}

func run(mode aqe.Mode, cost *aqe.CostModel, rounds int) time.Duration {
	db := aqe.Open(aqe.Options{Workers: 4, Mode: mode, Cost: cost})
	db.LoadTPCH(0.01)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range metadataQueries {
			if _, err := db.ExecSQL(q); err != nil {
				log.Fatal(err)
			}
		}
	}
	return time.Since(start)
}

func main() {
	const rounds = 4
	fmt.Printf("interactive metadata workload: %d queries x %d rounds (LLVM-scale compile costs)\n",
		len(metadataQueries), rounds)
	paper := aqe.PaperCosts()
	for _, m := range []aqe.Mode{aqe.ModeOptimized, aqe.ModeUnoptimized,
		aqe.ModeBytecode, aqe.ModeAdaptive} {
		d := run(m, paper, rounds)
		fmt.Printf("  %-12v %8.1f ms total (%5.2f ms/query)\n",
			m, d.Seconds()*1e3, d.Seconds()*1e3/float64(rounds*len(metadataQueries)))
	}
	fmt.Println("\nadaptive/bytecode answer immediately; the static compiled modes pay")
	fmt.Println("the paper's 'compilation takes 50x longer than execution' tax on every query.")
}
