// Package aqe is an adaptive compiling query engine: a from-scratch Go
// reproduction of "Adaptive Execution of Compiled Queries" (Kohn, Leis,
// Neumann — ICDE 2018), the HyPer adaptive execution paper.
//
// Queries are code-generated into a typed SSA IR (the LLVM IR stand-in),
// translated in linear time into register-machine bytecode, and executed
// morsel-wise across workers. The engine monitors per-pipeline progress
// and — in the default adaptive mode — switches hot pipelines to compiled
// closures (unoptimized or optimized tiers) mid-flight, exactly following
// the paper's Fig. 5/7 machinery: low latency for small inputs, full
// throughput for large ones, without up-front cost decisions.
//
// Quick start:
//
//	db := aqe.Open(aqe.Options{})
//	db.LoadTPCH(0.01)
//	res, err := db.ExecSQL(`SELECT l_returnflag, count(*), sum(l_extendedprice)
//	                        FROM lineitem GROUP BY l_returnflag`)
//
// Plans can also be built directly with the plan DSL (see internal/tpch
// for all 22 TPC-H queries) and run with Exec.
package aqe

import (
	"context"
	"fmt"

	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/sql"
	"aqe/internal/storage"
	"aqe/internal/tpch"
)

// Mode selects the execution mode.
type Mode = exec.Mode

// Execution modes. ModeAdaptive (the default) starts every pipeline in the
// bytecode interpreter and compiles it in the background when the
// extrapolated remaining work justifies it; the other modes fix the tier
// up front (the paper's static baselines).
const (
	ModeBytecode    = exec.ModeBytecode
	ModeUnoptimized = exec.ModeUnoptimized
	ModeOptimized   = exec.ModeOptimized
	ModeAdaptive    = exec.ModeAdaptive
	// ModeNative pre-assembles every pipeline to machine code via the
	// copy-and-patch template JIT (tier 6), falling back per-pipeline to
	// the optimized closure tier on platforms without a backend.
	ModeNative = exec.ModeNative
	// ModeVector pins every kernel-compilable pipeline to the vectorized
	// batch engine, falling back per-pipeline to the optimized closure
	// tier for shapes the kernel format cannot express.
	ModeVector = exec.ModeVector
)

// CostModel predicts compile times for the adaptive controller; see
// PaperCosts and NativeCosts.
type CostModel = exec.CostModel

// PaperCosts returns the compile-cost model calibrated to the paper's
// LLVM measurements; the modeled latency is imposed on compilations
// (DESIGN.md documents this substitution).
func PaperCosts() *CostModel { return exec.Paper() }

// NativeCosts returns the model of the in-process closure compilers with
// no simulated latency.
func NativeCosts() *CostModel { return exec.Native() }

// Options configures a DB.
type Options struct {
	// Workers is the number of worker threads (default 4).
	Workers int
	// Mode is the execution mode (default ModeAdaptive).
	Mode Mode
	// Cost is the compile-cost model (default NativeCosts()).
	Cost *CostModel
	// Trace records per-morsel execution traces on every result.
	Trace bool
	// CacheBytes is the byte budget of the plan-fingerprint compilation
	// cache that lets repeated queries skip translation and start in the
	// best previously compiled tier. 0 selects the default (64 MiB);
	// negative disables caching.
	CacheBytes int64
	// SerialFinalize retains the single-threaded pipeline-breaker path
	// (join chain linking, aggregation merge) instead of the default
	// hash-range partitioned parallel finalization.
	SerialFinalize bool
	// NoJoinFilter disables the Bloom filter generated in join probes.
	NoJoinFilter bool
	// FilterStats counts Bloom-filter hits and skipped chain walks per
	// query (Stats.FilterHits/FilterSkips) at a small per-probe cost.
	FilterStats bool
	// NoZoneMaps disables zone-map morsel pruning: scans dispatch every
	// block even when per-block min/max statistics prove the pushed-down
	// predicate rejects it.
	NoZoneMaps bool
	// NoDict disables the order-preserving string dictionaries: string
	// predicates, group hashing, and zone-map pruning run against the raw
	// strings (results are bit-identical either way).
	NoDict bool
	// MaxConcurrent caps the number of queries executing at once; excess
	// arrivals wait in a FIFO admission queue (Stats.Queued/WaitTime).
	// Default 8.
	MaxConcurrent int
	// MaxConcurrentPerTenant additionally caps concurrent queries per
	// tenant (0 = unlimited): a tenant at its quota queues even while
	// global capacity is free, and never holds up other tenants.
	MaxConcurrentPerTenant int
	// TenantWeights sets fair-share weights for the worker pool (default
	// 1 per tenant): under contention a tenant's morsels are granted
	// workers in proportion to its weight.
	TenantWeights map[string]int
	// PoolWorkers sizes the shared worker pool all in-flight queries
	// draw from (default GOMAXPROCS).
	PoolWorkers int
	// MorselCap bounds geometric morsel growth (default 65536 tuples).
	// A morsel is the unit of preemption: under concurrent load no query
	// waits for the pool longer than one in-flight morsel, so a service
	// tuned for tail latency lowers the cap to trade a little dispatch
	// amortization for a tighter worst-case wait.
	MorselCap int64
}

// Query re-exports the multi-stage plan query type used by Exec.
type Query = plan.Query

// Result is a materialized query result (see exec.Result).
type Result = exec.Result

// Stats describes an executed query.
type Stats = exec.Stats

// DB is a database handle: a table catalog plus an execution engine.
type DB struct {
	cat *storage.Catalog
	eng *exec.Engine
}

// Open creates a database.
func Open(opts Options) *DB {
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	} else if cacheBytes < 0 {
		cacheBytes = 0
	}
	eopts := exec.Options{Workers: opts.Workers, Mode: opts.Mode,
		Cost: opts.Cost, Trace: opts.Trace, CacheBytes: cacheBytes,
		SerialFinalize: opts.SerialFinalize, NoJoinFilter: opts.NoJoinFilter,
		FilterStats: opts.FilterStats, NoZoneMaps: opts.NoZoneMaps,
		NoDict: opts.NoDict, MaxConcurrent: opts.MaxConcurrent,
		MaxConcurrentPerTenant: opts.MaxConcurrentPerTenant,
		TenantWeights:          opts.TenantWeights,
		PoolWorkers:            opts.PoolWorkers,
		MorselCap:              opts.MorselCap}
	if eopts.Mode == 0 && opts.Cost == nil {
		eopts.Mode = ModeAdaptive
	}
	if eopts.Cost == nil {
		eopts.Cost = exec.Native()
	}
	return &DB{cat: storage.NewCatalog(), eng: exec.New(eopts)}
}

// Register adds a table to the catalog.
func (db *DB) Register(t *storage.Table) { db.cat.Add(t) }

// Catalog exposes the table catalog.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Engine exposes the underlying execution engine.
func (db *DB) Engine() *exec.Engine { return db.eng }

// LoadTPCH generates and registers the TPC-H tables at the given scale
// factor (SF 0.01 ≈ 10 MB, SF 1 ≈ 1 GB).
func (db *DB) LoadTPCH(sf float64) {
	cat := tpch.Gen(sf)
	for _, name := range cat.Names() {
		db.cat.Add(cat.Table(name))
	}
}

// TPCHQuery returns TPC-H query n (1-22) as a plan against this catalog.
func (db *DB) TPCHQuery(n int) plan.Query { return tpch.Query(db.cat, n) }

// Exec runs a (possibly multi-stage) plan query.
func (db *DB) Exec(q plan.Query) (*Result, error) { return db.eng.Run(q) }

// ExecCtx runs a plan query under a context: a cancelled or expired
// context stops the query at the next morsel boundary and returns an
// error wrapping the cause, with Stats.Cancelled set on the result.
func (db *DB) ExecCtx(ctx context.Context, q plan.Query) (*Result, error) {
	return db.eng.RunCtx(ctx, q)
}

// ExecPlan runs a single plan.
func (db *DB) ExecPlan(node plan.Node, name string) (*Result, error) {
	return db.eng.RunPlan(node, name)
}

// ExecPlanCtx runs a single plan under a context (see ExecCtx).
func (db *DB) ExecPlanCtx(ctx context.Context, node plan.Node, name string) (*Result, error) {
	return db.eng.RunPlanCtx(ctx, node, name)
}

// ExecSQL parses, plans and runs a SQL query (the supported subset covers
// single- and multi-table SELECT with WHERE, GROUP BY, ORDER BY, LIMIT).
func (db *DB) ExecSQL(query string) (*Result, error) {
	return db.ExecSQLCtx(context.Background(), query)
}

// ExecSQLCtx is ExecSQL under a context (see ExecCtx).
func (db *DB) ExecSQLCtx(ctx context.Context, query string) (*Result, error) {
	node, err := sql.Plan(query, db.cat)
	if err != nil {
		return nil, err
	}
	return db.eng.RunPlanCtx(ctx, node, "sql")
}

// FormatRows renders result rows for display.
func FormatRows(res *Result, max int) string {
	out := ""
	for i, c := range res.Cols {
		if i > 0 {
			out += " | "
		}
		out += c
	}
	out += "\n"
	for i, row := range res.Rows {
		if max >= 0 && i >= max {
			out += fmt.Sprintf("... (%d more rows)\n", len(res.Rows)-max)
			break
		}
		for j, d := range row {
			if j > 0 {
				out += " | "
			}
			out += exec.Format(d, res.Types[j])
		}
		out += "\n"
	}
	return out
}

// Datum re-exports the scalar result value type.
type Datum = expr.Datum
