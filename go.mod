module aqe

go 1.22
