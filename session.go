package aqe

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/sql"
)

// Value is a typed scalar used as a prepared-statement binding. Build
// one with ParseLiteral or the expr constructors re-exported below.
type Value = expr.Const

// ParseLiteral parses one SQL literal (number, 'string', DATE '...')
// into a binding value.
func ParseLiteral(src string) (*Value, error) { return sql.ParseLiteral(src) }

// Session is per-client state on a shared DB: a tenant identity every
// query is admitted and scheduled under, plus named prepared statements.
// Sessions are cheap, independent, and safe for concurrent use; the
// compiled form of a prepared statement lives in the engine's
// fingerprint cache, so sessions preparing the same statement share it.
type Session struct {
	db     *DB
	tenant string

	mu       sync.Mutex
	prepared map[string]string // name -> SELECT body
}

// NewSession creates a session. tenant may be "" for untenanted use.
func (db *DB) NewSession(tenant string) *Session {
	return &Session{db: db, tenant: tenant, prepared: map[string]string{}}
}

// Tenant returns the session's tenant identity.
func (s *Session) Tenant() string { return s.tenant }

// Prepare registers a named parameterized statement ($1, $2, ... refer
// to EXECUTE binding values). The body is syntax-checked now; binding
// and planning happen per EXECUTE, when the parameter types are known —
// the plan-fingerprint cache makes every execution after the first skip
// translation and compilation entirely.
func (s *Session) Prepare(name, body string) error {
	if name == "" {
		return fmt.Errorf("aqe: prepared statement needs a name")
	}
	st, err := sql.ParseStmt("PREPARE " + name + " AS " + body)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.prepared[name] = st.Body
	s.mu.Unlock()
	return nil
}

// Deallocate removes a prepared statement.
func (s *Session) Deallocate(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.prepared[name]; !ok {
		return fmt.Errorf("aqe: prepared statement %q does not exist", name)
	}
	delete(s.prepared, name)
	return nil
}

// Prepared lists the session's prepared statement names, sorted.
func (s *Session) Prepared() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.prepared))
	for n := range s.prepared {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Execute runs a prepared statement under the given binding values.
func (s *Session) Execute(ctx context.Context, name string, args []*Value) (*Result, error) {
	s.mu.Lock()
	body, ok := s.prepared[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("aqe: prepared statement %q does not exist", name)
	}
	if args == nil {
		args = []*Value{}
	}
	node, _, bound, err := sql.PlanBind(body, s.db.cat, args)
	if err != nil {
		return nil, err
	}
	return s.db.eng.RunPlanOpts(ctx, node, "sql:"+name,
		exec.RunOpts{Tenant: s.tenant, Params: bound})
}

// Exec parses and runs one statement: PREPARE / EXECUTE / DEALLOCATE
// manage the session's prepared statements (returning an empty result),
// anything else plans and runs as a query under the session's tenant.
func (s *Session) Exec(ctx context.Context, stmt string) (*Result, error) {
	st, err := sql.ParseStmt(stmt)
	if err != nil {
		return nil, err
	}
	switch st.Kind {
	case sql.StmtPrepare:
		s.mu.Lock()
		s.prepared[st.Name] = st.Body
		s.mu.Unlock()
		return &Result{}, nil
	case sql.StmtExecute:
		return s.Execute(ctx, st.Name, st.Args)
	case sql.StmtDeallocate:
		if err := s.Deallocate(st.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	node, err := sql.Plan(st.Body, s.db.cat)
	if err != nil {
		return nil, err
	}
	return s.db.eng.RunPlanOpts(ctx, node, "sql", exec.RunOpts{Tenant: s.tenant})
}

// ExecQuery runs a (possibly multi-stage) plan query under the
// session's tenant — the plan-DSL counterpart of Exec.
func (s *Session) ExecQuery(ctx context.Context, q Query) (*Result, error) {
	return s.db.eng.RunCtxOpts(ctx, q, exec.RunOpts{Tenant: s.tenant})
}
